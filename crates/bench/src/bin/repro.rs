//! `repro` — regenerate every table and figure of the AP1000+ paper.
//!
//! ```text
//! repro table1                 # machine specifications (static)
//! repro fig6                   # MLSim parameter files
//! repro fig7 [--bytes N]       # PUT communication model chains
//! repro table2 [--scale s]     # speedups vs AP1000 (runs the suite)
//! repro table3 [--scale s]     # per-PE communication statistics
//! repro fig8   [--scale s]     # normalized execution-time breakdown
//! repro fig8 --ascii           # the same as ASCII stacked bars
//! repro all    [--scale s]     # everything above, one suite run
//! repro bench  --bench-out F   # versioned machine-readable bench report
//! repro compare BASE CUR       # diff two bench reports, exit 1 on regression
//! repro sweep  --bench-out F   # parallel app × size × factor grid sweep
//! repro fault  --faults F.ron  # run apps under a fault-injection schedule
//! repro record  --apps CG ...  # record a run as a binary .evtrace file
//! repro replay  T.evtrace      # re-execute and gate against the recording
//! repro remodel T.evtrace      # replay recorded traffic under new models
//! repro scaling --out F        # PDES sim-thread scaling curve + artifact
//! repro serve  --addr A:P      # simulation-as-a-service job server
//! repro submit --addr A:P ...  # client for a running repro serve
//! ```
//!
//! Suite-running commands also accept `--json` (machine-readable rows on
//! stdout), `--trace-out FILE` (record sim-time event timelines on
//! every emulator run and write one Chrome-trace JSON file, one process
//! group per workload, viewable in Perfetto), `--bench-out FILE` (write
//! the versioned bench report documented in DESIGN.md; implies timeline
//! recording so critical-path and divergence sections are populated;
//! `--rev REV` stamps a revision into it), `--markdown` (GitHub-flavored
//! tables instead of plain text) and `--md-out FILE` (write the full
//! Markdown report, e.g. into `results/`).
//!
//! Telemetry flags (suite-running commands): `--metrics-out FILE` writes
//! the versioned `ap1000plus.metrics` artifact (sampled gauge series,
//! torus heatmaps, per-link busy times) and implies sampling;
//! `--metrics-interval USECS` sets the sim-time sampling period (default
//! 100 µs); `--heatmap` prints the ASCII torus heatmaps; `--progress`
//! prints rate-limited live progress lines per emulator run;
//! `--flight-recorder N` bounds timeline recording to the last N events
//! per cell unit (the only recording mode allowed past 1024 cells);
//! `--flight-dump FILE` writes the recorded tail as a Chrome trace when a
//! run dies of a deadlock, lost cell, or unsurvivable fault. Counter
//! tracks from sampled runs are merged into `--trace-out` exports.
//! `--sim-threads N` selects the conservative time-windowed PDES engine
//! (DESIGN.md §10) for every emulator run the command makes: N ≥ 2
//! parallelizes a *single* simulation across N host threads with
//! byte-identical results; 1 (the default) keeps the classic serial
//! event loop. Fault-injected runs always use the serial engine.
//!
//! `repro compare BASE CUR [--threshold PCT]` exits nonzero when any
//! app's emulator or model total in CUR is more than PCT percent (default
//! 10) slower than in BASE — the perf-regression gate CI runs against
//! `results/BENCH_baseline.json`.
//!
//! `repro sweep --bench-out FILE [--apps A,B] [--sizes default,4,8]
//! [--factors 0.5,1.0] [--threads N] [--scale test|paper] [--rev REV]`
//! fans the app × machine-size × computation-factor grid across N host
//! threads (default: all cores) and writes the merged `ap1000plus.bench`
//! report in deterministic grid order — byte-identical for any N. Failed
//! grid points are reported on stderr and make the command exit 1.
//!
//! `repro fault (--faults SPEC.ron | --fault-seed N) [--out FILE]
//! [--apps CG] [--scale test|paper] [--threads N]` runs the fault-capable
//! applications under a deterministic fault-injection schedule — loaded
//! from a RON spec file or derived (survivable) from a seed — and writes
//! one merged text report: the schedule, each surviving app's simulated
//! total and `FaultReport` (retries, drops, detours, acks), and any
//! failures. The report is byte-identical for any `--threads`; a failed
//! or unsurvived app makes the command exit 1.
//!
//! `repro record --apps CG[,FT,..] (--trace-out FILE | --out-dir DIR)
//! [--scale test|paper] [--size N] [--threads N] [--sim-threads N]
//! [--faults SPEC.ron] [--stream] [--metrics-interval USECS]` runs each
//! app on the emulator with full event tracing and writes one compact
//! binary `.evtrace` file per app (wire format: DESIGN.md §9). Recording
//! is deterministic: re-recording the same app produces byte-identical
//! files regardless of `--threads` (host fan-out across apps) or
//! `--sim-threads` (PDES fan-out within one simulation). Machines past
//! 1024 cells (or any run with `--stream`) stream events to disk instead
//! of buffering the timeline.
//!
//! `repro replay TRACE.evtrace [--lenient] [--at NS [--cell ID]]`
//! re-executes the recorded workload and gates the fresh run against the
//! file: strict mode (default) exits 1 on the first mismatching event
//! with a two-sided context window; `--lenient` compares final simulated
//! times only and prints a divergence summary. `--at NS` skips
//! re-execution and dumps reconstructed machine state (in-flight
//! transfers, queue depths, blocked cells) at that recorded sim-time.
//!
//! `repro remodel TRACE.evtrace [--factors 0.5,1.0] [--bench-out FILE]
//! [--rev REV]` replays the recorded traffic under each
//! computation-factor multiple of the three paper models — no emulator —
//! and writes a normal versioned `ap1000plus.bench` report.
//!
//! `repro scaling [--out FILE] [--app CG] [--scale test|paper]
//! [--sizes default,256,1024] [--sim-threads 1,2,4,8] [--repeats N]
//! [--rev REV]` records the app once per machine size per sim-thread
//! count (best-of-`--repeats` wall-clock), byte-compares every parallel
//! recording against the serial one, prints the speedup curve, and
//! writes the versioned `ap1000plus.scaling` artifact. Exits 1 if any
//! recording diverges from the serial bytes. The checked-in
//! `results/SCALING_baseline.json` documents the curve measured on the
//! reference (single-core) CI host.
//!
//! `repro serve [--addr HOST:PORT] [--workers N] [--queue-cap N]
//! [--cache-entries N] [--cache-dir DIR] [--disk-cache-bytes N]
//! [--allow-sleep] [--sandbox] [--job-timeout MS] [--job-mem-mb N]
//! [--job-retries N] [--drain-ms MS]` runs the apserve job server
//! (DESIGN.md §11): clients POST JSON job documents to `/submit` and
//! identical requests are answered byte-identically from a
//! content-addressed result cache. `--sandbox` executes each job in a
//! self-exec'd `repro job-exec` child process with a wall-clock
//! deadline and optional address-space ceiling, so a crashing or
//! runaway job yields a structured 500/504 instead of taking the
//! server down; a key that crashes through its retry is poisoned
//! (422). `--addr 127.0.0.1:0` binds an ephemeral port; the bound
//! address is printed as `listening ADDR` on stdout. `POST /shutdown`
//! (or `repro submit --shutdown`) drains in-flight jobs for
//! `--drain-ms`, then kills the remaining children — no orphans.
//!
//! `repro submit --addr HOST:PORT (--job JSON | --job-file FILE |
//! --stats | --health | --shutdown) [--stream] [--retry N] [--out
//! FILE]` talks to a running server: prints the report on stdout (or
//! atomically writes it to `--out`), the `X-Cache`/`X-Key` diagnosis
//! on stderr. Exit codes: 0 success, 3 queue-full backpressure (retry
//! later), 2 rejected request (including a poisoned key), 1 transport
//! or job failure. `--retry N` honours the 429 `Retry-After` header
//! with capped exponential backoff before giving up with exit 3.
//! `--stream` prints NDJSON progress lines on stderr as the job
//! advances.
//!
//! `tracecat` (a sibling binary) inspects `.evtrace` headers and size
//! statistics.
//!
//! `--scale test` uses small instances (seconds); the default `paper`
//! scale uses the reduced-but-paper-shaped instances documented in
//! DESIGN.md/EXPERIMENTS.md.

use apbench::{
    bench_report, compare_reports, crosscheck, fault_sweep_text, fig6, fig7, fig8, fig8_ascii,
    markdown_report, parse_scale, record, report, run_fault_sweep, run_suite, run_sweep,
    suite_json, table1, table2, table3, write_bench_report, FaultSweepConfig, ReplayMode,
    SweepConfig, FAULT_APPS, SWEEP_APPS,
};
use aputil::ApError;
use std::path::{Path, PathBuf};
use std::time::Instant;

fn flag_value(args: &[String], flag: &str) -> Option<String> {
    args.iter()
        .position(|a| a == flag)
        .and_then(|i| args.get(i + 1))
        .cloned()
}

/// [`parse_scale`] with the CLI exit convention: a bad `--scale` prints
/// the structured error and exits with the usage status.
fn scale_or_die(args: &[String]) -> apapps::Scale {
    parse_scale(args).unwrap_or_else(|e| {
        eprintln!("{e}");
        std::process::exit(2);
    })
}

/// Exits 1 with a structured error (the `ApError::Io` path-bearing kind
/// for write failures) instead of panicking on a full disk or a bad
/// output directory.
fn fail_io(err: ApError) -> ! {
    eprintln!("{err}");
    std::process::exit(1);
}

/// [`std::fs::write`] with the path woven into the failure message.
fn write_or_die(path: &str, contents: &str) {
    record::write_file(Path::new(path), contents.as_bytes()).unwrap_or_else(|e| fail_io(e));
}

/// Applies the telemetry flags shared by the suite-running commands by
/// setting the process-wide emulator defaults before any machine is
/// built. Returns the `--metrics-out` path; metrics sampling turns on
/// when it, `--metrics-interval`, or `--heatmap` is present.
fn apply_telemetry_flags(args: &[String]) -> Option<String> {
    let bad = |msg: String| -> ! {
        eprintln!("{msg}");
        std::process::exit(2);
    };
    let metrics_out = flag_value(args, "--metrics-out");
    let interval = flag_value(args, "--metrics-interval");
    let heatmap = args.iter().any(|a| a == "--heatmap");
    if metrics_out.is_some() || interval.is_some() || heatmap {
        let us: u64 = match &interval {
            Some(s) => s.parse().ok().filter(|&us| us > 0).unwrap_or_else(|| {
                bad(format!(
                    "--metrics-interval takes microseconds (> 0), got '{s}'"
                ))
            }),
            None => 100,
        };
        apcore::set_metrics_default(Some(aputil::SimTime::from_micros(us)));
    }
    if args.iter().any(|a| a == "--progress") {
        apcore::set_progress_default(true);
    }
    if let Some(s) = flag_value(args, "--flight-recorder") {
        let cap: usize = s.parse().unwrap_or_else(|_| {
            bad(format!(
                "--flight-recorder takes an event capacity, got '{s}'"
            ))
        });
        apcore::set_flight_recorder_default(std::num::NonZeroUsize::new(cap));
    }
    if let Some(path) = flag_value(args, "--flight-dump") {
        apcore::set_flight_dump_path(Some(path.into()));
    }
    if let Some(s) = flag_value(args, "--sim-threads") {
        let n: u32 = s.parse().ok().filter(|&n| n > 0).unwrap_or_else(|| {
            bad(format!(
                "--sim-threads takes a thread count (> 0), got '{s}'"
            ))
        });
        apcore::set_sim_threads_default(n);
    }
    metrics_out
}

/// Writes the `ap1000plus.metrics` artifact and/or prints ASCII torus
/// heatmaps for the rows that carried sampled telemetry.
fn emit_metrics(args: &[String], metrics_out: Option<&str>, rows: &[apbench::ExperimentRow]) {
    let runs: Vec<(String, &apmon::RunMetrics)> = rows
        .iter()
        .filter_map(|r| r.metrics.as_deref().map(|m| (r.name.clone(), m)))
        .collect();
    if let Some(path) = metrics_out {
        apmon::write_metrics_report(Path::new(path), &runs)
            .unwrap_or_else(|e| fail_io(ApError::io(path.to_string(), e)));
        eprintln!("wrote metrics report to {path} ({} run(s))", runs.len());
    }
    if args.iter().any(|a| a == "--heatmap") {
        for (name, m) in &runs {
            for h in [&m.cell_busy, &m.link_util].into_iter().flatten() {
                println!("== {name} ==");
                print!("{}", h.render(64));
            }
        }
    }
}

fn compare_cmd(args: &[String]) -> ! {
    let paths: Vec<&String> = args
        .iter()
        .skip(1)
        .take_while(|a| !a.starts_with("--"))
        .collect();
    let [base_path, cur_path] = paths[..] else {
        eprintln!("usage: repro compare BASELINE.json CURRENT.json [--threshold PCT]");
        std::process::exit(2);
    };
    let threshold: f64 = flag_value(args, "--threshold")
        .map(|s| {
            s.parse().unwrap_or_else(|_| {
                eprintln!("--threshold takes a number, got '{s}'");
                std::process::exit(2);
            })
        })
        .unwrap_or(10.0);
    let fail = |msg: String| -> ! {
        eprintln!("{msg}");
        std::process::exit(2);
    };
    let load = |path: &String| {
        let text = std::fs::read_to_string(path)
            .unwrap_or_else(|e| fail(format!("cannot read {path}: {e}")));
        aputil::Json::parse(&text).unwrap_or_else(|e| fail(format!("cannot parse {path}: {e}")))
    };
    match compare_reports(&load(base_path), &load(cur_path), threshold) {
        Ok(cmp) => {
            print!("{}", cmp.render());
            std::process::exit(if cmp.pass() { 0 } else { 1 });
        }
        Err(e) => {
            eprintln!("compare failed: {e}");
            std::process::exit(2);
        }
    }
}

fn sweep_cmd(args: &[String]) -> ! {
    let Some(out_path) = flag_value(args, "--bench-out") else {
        eprintln!(
            "usage: repro sweep --bench-out FILE [--apps A,B,..] [--sizes default,4,8] \
             [--factors 0.5,1.0] [--threads N] [--scale test|paper] [--rev REV] [--markdown] \
             [--metrics-out FILE] [--metrics-interval USECS] [--heatmap] [--progress] \
             [--flight-recorder N] [--flight-dump FILE]"
        );
        std::process::exit(2);
    };
    let bad = |msg: String| -> ! {
        eprintln!("{msg}");
        std::process::exit(2);
    };
    let apps: Vec<String> = match flag_value(args, "--apps") {
        Some(list) => list.split(',').map(str::to_string).collect(),
        None => SWEEP_APPS.iter().map(|s| s.to_string()).collect(),
    };
    let sizes: Vec<Option<u32>> = match flag_value(args, "--sizes") {
        Some(list) => list
            .split(',')
            .map(|s| match s {
                "default" => None,
                n => Some(
                    n.parse()
                        .unwrap_or_else(|_| bad(format!("--sizes takes PE counts, got '{n}'"))),
                ),
            })
            .collect(),
        None => vec![None],
    };
    let factors: Vec<f64> = match flag_value(args, "--factors") {
        Some(list) => list
            .split(',')
            .map(|s| {
                s.parse()
                    .unwrap_or_else(|_| bad(format!("--factors takes numbers, got '{s}'")))
            })
            .collect(),
        None => vec![1.0],
    };
    let threads: usize = match flag_value(args, "--threads") {
        Some(s) => s
            .parse()
            .unwrap_or_else(|_| bad(format!("--threads takes a count, got '{s}'"))),
        None => std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get),
    };
    let cfg = SweepConfig {
        scale: scale_or_die(args),
        apps,
        sizes,
        factors,
        threads,
    };
    let grid_len = cfg.grid().len();
    eprintln!(
        "sweeping {grid_len} grid points ({} apps x {} sizes x {} factors) on {} threads at \
         {:?} scale...",
        cfg.apps.len(),
        cfg.sizes.len(),
        cfg.factors.len(),
        cfg.threads,
        cfg.scale
    );
    let t0 = Instant::now();
    let out = run_sweep(&cfg);
    eprintln!(
        "sweep done in {:.1}s: {} points ok, {} failed",
        t0.elapsed().as_secs_f64(),
        out.rows.len(),
        out.failures.len()
    );
    let rev = flag_value(args, "--rev");
    let doc = bench_report(&out.rows, cfg.scale, rev.as_deref());
    write_or_die(&out_path, &doc.to_string());
    eprintln!("wrote sweep report to {out_path}");
    emit_metrics(
        args,
        flag_value(args, "--metrics-out").as_deref(),
        &out.rows,
    );
    if args.iter().any(|a| a == "--markdown") {
        print!("{}", report::table2_markdown(&out.rows));
    }
    for f in &out.failures {
        eprintln!("  FAILED  {f}");
    }
    std::process::exit(if out.failures.is_empty() { 0 } else { 1 });
}

fn fault_cmd(args: &[String]) -> ! {
    let bad = |msg: String| -> ! {
        eprintln!("{msg}");
        std::process::exit(2);
    };
    let apps: Vec<String> = match flag_value(args, "--apps") {
        Some(list) => list.split(',').map(str::to_string).collect(),
        None => FAULT_APPS.iter().map(|s| s.to_string()).collect(),
    };
    let spec = match (
        flag_value(args, "--faults"),
        flag_value(args, "--fault-seed"),
    ) {
        (Some(path), None) => {
            let text = std::fs::read_to_string(&path)
                .unwrap_or_else(|e| bad(format!("cannot read {path}: {e}")));
            apfault::from_ron(&text).unwrap_or_else(|e| bad(format!("{path}: {e}")))
        }
        (None, Some(s)) => {
            let seed: u64 = s
                .parse()
                .unwrap_or_else(|_| bad(format!("--fault-seed takes a number, got '{s}'")));
            // Survivable schedules only: chaos crash testing lives in the
            // apfuzz referee; `repro fault` asserts verified completion.
            // Cell ids are drawn for the largest selected machine; events
            // naming cells a smaller machine lacks simply never fire.
            let scale = scale_or_die(args);
            let max_pe = apps
                .iter()
                .filter_map(|a| apbench::sweep::build_workload(a, scale, None).ok())
                .map(|w| w.pe())
                .max()
                .unwrap_or(16);
            apcore::FaultSpec::random(seed, max_pe, true)
        }
        (Some(_), Some(_)) => bad("--faults and --fault-seed are mutually exclusive".into()),
        (None, None) => bad(
            "usage: repro fault (--faults SPEC.ron | --fault-seed N) [--out FILE] \
             [--apps CG,..] [--scale test|paper] [--threads N]"
                .into(),
        ),
    };
    let threads: usize = match flag_value(args, "--threads") {
        Some(s) => s
            .parse()
            .unwrap_or_else(|_| bad(format!("--threads takes a count, got '{s}'"))),
        None => std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get),
    };
    let cfg = FaultSweepConfig {
        scale: scale_or_die(args),
        apps,
        spec,
        threads,
    };
    eprintln!(
        "running {} app(s) under a {}-event fault schedule on {} threads at {:?} scale...",
        cfg.apps.len(),
        cfg.spec.events.len(),
        cfg.threads,
        cfg.scale
    );
    let t0 = Instant::now();
    let out = run_fault_sweep(&cfg);
    eprintln!(
        "fault sweep done in {:.1}s: {} survived, {} failed",
        t0.elapsed().as_secs_f64(),
        out.rows.len(),
        out.failures.len()
    );
    let text = fault_sweep_text(&cfg, &out);
    match flag_value(args, "--out") {
        Some(path) => {
            write_or_die(&path, &text);
            eprintln!("wrote fault report to {path}");
        }
        None => print!("{text}"),
    }
    for f in &out.failures {
        eprintln!("  FAILED  {f}");
    }
    std::process::exit(if out.failures.is_empty() { 0 } else { 1 });
}

fn scaling_cmd(args: &[String]) -> ! {
    let bad = |msg: String| -> ! {
        eprintln!("{msg}");
        std::process::exit(2);
    };
    let app = flag_value(args, "--app").unwrap_or_else(|| "CG".into());
    let sizes: Vec<Option<u32>> = match flag_value(args, "--sizes") {
        Some(list) => list
            .split(',')
            .map(|s| match s {
                "default" => None,
                n => Some(
                    n.parse()
                        .unwrap_or_else(|_| bad(format!("--sizes takes PE counts, got '{n}'"))),
                ),
            })
            .collect(),
        None => vec![None],
    };
    // `--sim-threads` takes a comma list here (the sweep axis), unlike the
    // single count the suite-running commands take — which is why this
    // command dispatches before `apply_telemetry_flags`.
    let sim_threads: Vec<u32> = match flag_value(args, "--sim-threads") {
        Some(list) => {
            list.split(',')
                .map(|s| {
                    s.parse::<u32>().ok().filter(|&n| n > 0).unwrap_or_else(|| {
                        bad(format!("--sim-threads takes counts (> 0), got '{s}'"))
                    })
                })
                .collect()
        }
        None => vec![1, 2, 4, 8],
    };
    let repeats: u32 = match flag_value(args, "--repeats") {
        Some(s) => s
            .parse()
            .unwrap_or_else(|_| bad(format!("--repeats takes a count, got '{s}'"))),
        None => 1,
    };
    let cfg = apbench::ScalingConfig {
        app,
        scale: scale_or_die(args),
        sizes,
        sim_threads,
        repeats,
    };
    eprintln!(
        "scaling {} across {} size(s) x {:?} sim-threads ({} repeat(s)) at {:?} scale...",
        cfg.app,
        cfg.sizes.len(),
        cfg.sim_threads,
        cfg.repeats.max(1),
        cfg.scale
    );
    let t0 = Instant::now();
    let points = apbench::run_scaling(&cfg).unwrap_or_else(|e| {
        eprintln!("scaling failed: {e}");
        std::process::exit(1);
    });
    eprintln!("scaling done in {:.1}s", t0.elapsed().as_secs_f64());
    if let Some(path) = flag_value(args, "--out") {
        let rev = flag_value(args, "--rev");
        let doc = apbench::scaling_report(&cfg, &points, rev.as_deref());
        write_or_die(&path, &doc.to_string());
        eprintln!("wrote scaling artifact to {path}");
    }
    print!("{}", apbench::scaling_text(&points));
    // Byte-identity across sim-thread counts is a hard gate, not a stat.
    let broken = points.iter().any(|p| !p.identical);
    if broken {
        eprintln!("FAILED: a parallel recording diverged from the serial bytes");
    }
    std::process::exit(if broken { 1 } else { 0 });
}

fn record_cmd(args: &[String]) -> ! {
    let bad = |msg: String| -> ! {
        eprintln!("{msg}");
        std::process::exit(2);
    };
    let usage = || -> ! {
        bad(
            "usage: repro record --apps CG[,FT,..] (--trace-out FILE | --out-dir DIR) \
             [--scale test|paper] [--size N] [--threads N] [--sim-threads N] \
             [--faults SPEC.ron] [--stream] [--metrics-interval USECS]"
                .into(),
        )
    };
    let Some(apps) = flag_value(args, "--apps") else {
        usage();
    };
    let apps: Vec<String> = apps.split(',').map(str::to_string).collect();
    let scale = scale_or_die(args);
    let size: Option<u32> = flag_value(args, "--size").map(|s| {
        s.parse()
            .unwrap_or_else(|_| bad(format!("--size takes a PE count, got '{s}'")))
    });
    let stream = args.iter().any(|a| a == "--stream");
    let fault = flag_value(args, "--faults").map(|path| {
        let text = std::fs::read_to_string(&path)
            .unwrap_or_else(|e| bad(format!("cannot read {path}: {e}")));
        apfault::from_ron(&text).unwrap_or_else(|e| bad(format!("{path}: {e}")))
    });
    let outs: Vec<(String, PathBuf)> = match (
        flag_value(args, "--trace-out"),
        flag_value(args, "--out-dir"),
    ) {
        (Some(path), None) => {
            if apps.len() != 1 {
                bad("--trace-out records one app; use --out-dir for several".into());
            }
            vec![(apps[0].clone(), PathBuf::from(path))]
        }
        (None, Some(dir)) => {
            let dir = PathBuf::from(dir);
            std::fs::create_dir_all(&dir)
                .unwrap_or_else(|e| fail_io(ApError::io(dir.display().to_string(), e)));
            apps.iter()
                .map(|a| (a.clone(), dir.join(format!("{a}.evtrace"))))
                .collect()
        }
        _ => usage(),
    };
    let threads: usize = match flag_value(args, "--threads") {
        Some(s) => s
            .parse()
            .unwrap_or_else(|_| bad(format!("--threads takes a count, got '{s}'"))),
        None => std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get),
    };
    // Streaming installs a process-global sink, so streamed recordings
    // must not share the process with other machine builds: serialize.
    let workers = if stream {
        1
    } else {
        threads.clamp(1, outs.len())
    };
    let t0 = Instant::now();
    let next = std::sync::atomic::AtomicUsize::new(0);
    let mut results: Vec<(usize, Result<record::RecordedTrace, String>)> =
        std::thread::scope(|s| {
            let outs = &outs;
            let next = &next;
            let fault = fault.as_ref();
            let handles: Vec<_> = (0..workers)
                .map(|_| {
                    s.spawn(move || {
                        let mut done = Vec::new();
                        loop {
                            let i = next.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                            let Some((app, path)) = outs.get(i) else {
                                break;
                            };
                            let r = record::record_app(app, scale, size, fault, path, stream)
                                .map_err(|e| format!("{app}: {e}"));
                            done.push((i, r));
                        }
                        done
                    })
                })
                .collect();
            handles
                .into_iter()
                .flat_map(|h| h.join().expect("record worker panicked"))
                .collect()
        });
    results.sort_by_key(|&(i, _)| i);
    let mut failed = false;
    for (_, r) in results {
        match r {
            Ok(rec) => eprintln!(
                "recorded {} to {} ({} events, {} bytes, final time {})",
                rec.app,
                rec.path.display(),
                rec.events,
                rec.bytes,
                rec.total
            ),
            Err(e) => {
                failed = true;
                eprintln!("  FAILED  {e}");
            }
        }
    }
    eprintln!("record done in {:.1}s", t0.elapsed().as_secs_f64());
    std::process::exit(if failed { 1 } else { 0 });
}

fn replay_cmd(args: &[String]) -> ! {
    let bad = |msg: String| -> ! {
        eprintln!("{msg}");
        std::process::exit(2);
    };
    let Some(path) = args.iter().skip(1).find(|a| !a.starts_with("--")) else {
        bad("usage: repro replay TRACE.evtrace [--lenient] [--at NS [--cell ID]]".into());
    };
    if let Some(at) = flag_value(args, "--at") {
        let at_ns: u64 = at
            .parse()
            .unwrap_or_else(|_| bad(format!("--at takes sim-time nanoseconds, got '{at}'")));
        let cell: Option<u32> = flag_value(args, "--cell").map(|s| {
            s.parse()
                .unwrap_or_else(|_| bad(format!("--cell takes a cell id, got '{s}'")))
        });
        // v2 traces seek through the footer index, decoding only the
        // events sections that can hold state at `at_ns`; v1 traces
        // fall back to the full linear decode inside `read_file_at`.
        let doc = aptrace::EvTrace::read_file_at(Path::new(path), at_ns).unwrap_or_else(|e| {
            eprintln!("{path}: {e}");
            std::process::exit(1);
        });
        print!("{}", record::seek_report(&doc, at_ns, cell));
        std::process::exit(0);
    }
    let doc = aptrace::EvTrace::read_file(Path::new(path)).unwrap_or_else(|e| {
        eprintln!("{path}: {e}");
        std::process::exit(1);
    });
    let mode = if args.iter().any(|a| a == "--lenient") {
        ReplayMode::Lenient
    } else {
        ReplayMode::Strict
    };
    eprintln!(
        "replaying {} ({} cells, {} scale) against {path}...",
        doc.header.app, doc.header.ncells, doc.header.scale
    );
    let t0 = Instant::now();
    let conf = record::conformance(&doc, mode).unwrap_or_else(|e| {
        eprintln!("replay failed: {e}");
        std::process::exit(1);
    });
    eprintln!("replay done in {:.1}s", t0.elapsed().as_secs_f64());
    print!("{}", conf.render());
    std::process::exit(if conf.passed() { 0 } else { 1 });
}

fn remodel_cmd(args: &[String]) -> ! {
    let bad = |msg: String| -> ! {
        eprintln!("{msg}");
        std::process::exit(2);
    };
    let Some(path) = args.iter().skip(1).find(|a| !a.starts_with("--")) else {
        bad(
            "usage: repro remodel TRACE.evtrace [--factors 0.5,1.0] [--bench-out FILE] \
             [--rev REV]"
                .into(),
        );
    };
    let doc = aptrace::EvTrace::read_file(Path::new(path)).unwrap_or_else(|e| {
        eprintln!("{path}: {e}");
        std::process::exit(1);
    });
    let factors: Vec<f64> = match flag_value(args, "--factors") {
        Some(list) => list
            .split(',')
            .map(|s| {
                s.parse()
                    .unwrap_or_else(|_| bad(format!("--factors takes numbers, got '{s}'")))
            })
            .collect(),
        None => vec![1.0],
    };
    let rows = record::remodel_rows(&doc, &factors).unwrap_or_else(|e| bad(format!("{path}: {e}")));
    let scale = record::parse_scale_label(&doc.header.scale).unwrap_or_else(|e| bad(e));
    if let Some(out) = flag_value(args, "--bench-out") {
        let rev = flag_value(args, "--rev");
        let report = bench_report(&rows, scale, rev.as_deref());
        write_or_die(&out, &report.to_string());
        eprintln!("wrote bench report to {out}");
    }
    print!("{}", record::remodel_text(&rows));
    std::process::exit(0);
}

fn serve_cmd(args: &[String]) -> ! {
    let bad = |msg: String| -> ! {
        eprintln!("{msg}");
        std::process::exit(2);
    };
    let count = |flag: &str, default: usize| -> usize {
        match flag_value(args, flag) {
            Some(s) => s
                .parse()
                .ok()
                .filter(|&n| n > 0)
                .unwrap_or_else(|| bad(format!("{flag} takes a count (> 0), got '{s}'"))),
            None => default,
        }
    };
    let u64_flag = |flag: &str| -> Option<u64> {
        flag_value(args, flag).map(|s| {
            s.parse()
                .ok()
                .filter(|&n| n > 0)
                .unwrap_or_else(|| bad(format!("{flag} takes a positive integer, got '{s}'")))
        })
    };
    let sandbox = if args.iter().any(|a| a == "--sandbox") {
        let exe = std::env::current_exe()
            .unwrap_or_else(|e| bad(format!("cannot locate own executable for --sandbox: {e}")));
        let mut sb = apserve::SandboxConfig::new(vec![
            exe.to_string_lossy().into_owned(),
            "job-exec".to_string(),
        ]);
        if let Some(ms) = u64_flag("--job-timeout") {
            sb.job_timeout_ms = ms;
        }
        if let Some(mb) = u64_flag("--job-mem-mb") {
            sb.mem_limit_bytes = Some(mb.saturating_mul(1024 * 1024));
        }
        if let Some(s) = flag_value(args, "--job-retries") {
            sb.retries = s
                .parse()
                .unwrap_or_else(|_| bad(format!("--job-retries takes a count (>= 0), got '{s}'")));
        }
        Some(sb)
    } else {
        for flag in ["--job-timeout", "--job-mem-mb", "--job-retries"] {
            if flag_value(args, flag).is_some() {
                bad(format!("{flag} requires --sandbox"));
            }
        }
        None
    };
    let cfg = apserve::Config {
        addr: flag_value(args, "--addr").unwrap_or_else(|| "127.0.0.1:8090".into()),
        workers: count("--workers", 2),
        queue_cap: count("--queue-cap", 8),
        cache_entries: count("--cache-entries", 64),
        cache_dir: flag_value(args, "--cache-dir").map(PathBuf::from),
        disk_cache_bytes: u64_flag("--disk-cache-bytes"),
        allow_sleep: args.iter().any(|a| a == "--allow-sleep"),
        sandbox,
        drain_ms: u64_flag("--drain-ms").unwrap_or(2_000),
    };
    if cfg.disk_cache_bytes.is_some() && cfg.cache_dir.is_none() {
        bad("--disk-cache-bytes requires --cache-dir".into());
    }
    let handle = apserve::serve(cfg, apbench::simulator_executor()).unwrap_or_else(|e| {
        eprintln!("cannot start server: {e}");
        std::process::exit(1);
    });
    // Machine-parseable bind line on stdout — `--addr 127.0.0.1:0` gets
    // an ephemeral port, and scripts need to learn which.
    println!("listening {}", handle.addr);
    use std::io::Write as _;
    std::io::stdout().flush().ok();
    eprintln!(
        "apserve ready on {} (POST /submit, GET /stats, POST /shutdown)",
        handle.addr
    );
    while !handle.shutting_down() {
        std::thread::sleep(std::time::Duration::from_millis(100));
    }
    handle.shutdown();
    std::process::exit(0);
}

fn submit_cmd(args: &[String]) -> ! {
    let bad = |msg: String| -> ! {
        eprintln!("{msg}");
        std::process::exit(2);
    };
    let Some(addr) = flag_value(args, "--addr") else {
        bad(
            "usage: repro submit --addr HOST:PORT (--job JSON | --job-file FILE | --stats | \
             --health | --shutdown) [--stream] [--retry N] [--out FILE]"
                .into(),
        );
    };
    let transport_fail = |e: String| -> ! {
        eprintln!("submit failed: {e}");
        std::process::exit(1);
    };
    if args.iter().any(|a| a == "--stats" || a == "--health") {
        let path = if args.iter().any(|a| a == "--stats") {
            "/stats"
        } else {
            "/healthz"
        };
        let resp = apserve::client::get(&addr, path).unwrap_or_else(|e| transport_fail(e));
        println!("{}", resp.body_str());
        std::process::exit(if resp.status == 200 { 0 } else { 1 });
    }
    if args.iter().any(|a| a == "--shutdown") {
        let resp = apserve::client::request(&addr, "POST", "/shutdown", b"")
            .unwrap_or_else(|e| transport_fail(e));
        println!("{}", resp.body_str());
        std::process::exit(if resp.status == 200 { 0 } else { 1 });
    }
    let job = match (flag_value(args, "--job"), flag_value(args, "--job-file")) {
        (Some(json), None) => json,
        (None, Some(path)) => std::fs::read_to_string(&path)
            .unwrap_or_else(|e| bad(format!("cannot read {path}: {e}"))),
        _ => bad("submit takes exactly one of --job JSON or --job-file FILE".into()),
    };
    if args.iter().any(|a| a == "--stream") {
        // The flag is transport-only: inject `"stream": true` into the
        // job document (it is excluded from the cache key), so the
        // server narrates progress instead of answering in one piece.
        let job = match aputil::Json::parse(&job) {
            Ok(aputil::Json::Obj(mut fields)) => {
                fields.retain(|(k, _)| k != "stream");
                fields.push(("stream".to_string(), aputil::Json::Bool(true)));
                aputil::Json::Obj(fields).to_string()
            }
            _ => bad(format!("--stream needs a JSON object job, got: {job}")),
        };
        // Progress lines go to stderr as they arrive; the final report
        // line is the stdout payload, same as the non-streamed mode.
        let report = apserve::client::submit_stream(&addr, &job, |line| eprintln!("{line}"))
            .unwrap_or_else(|e| transport_fail(e));
        // A streamed job failure arrives as a final `{"error": ...}`
        // line over the same 200 stream; it is not a report.
        if let Ok(doc) = aputil::Json::parse(&report) {
            if doc.get("error").is_some() {
                eprintln!("{report}");
                std::process::exit(1);
            }
        }
        emit_report(args, &report);
        std::process::exit(0);
    }
    // `--retry N`: on 429 backpressure, honor the server's Retry-After
    // header with capped exponential backoff instead of exiting 3
    // immediately. Only 429 retries — structural errors would just fail
    // again, and 5xx may not be idempotent to wait out.
    let retries: u32 = match flag_value(args, "--retry") {
        Some(s) => s
            .parse()
            .unwrap_or_else(|_| bad(format!("--retry takes a count (>= 0), got '{s}'"))),
        None => 0,
    };
    let mut attempt: u32 = 0;
    let resp = loop {
        let resp = apserve::client::submit(&addr, &job).unwrap_or_else(|e| transport_fail(e));
        if resp.status != 429 || attempt >= retries {
            break resp;
        }
        attempt += 1;
        let after_secs: u64 = resp
            .header("retry-after")
            .and_then(|v| v.parse().ok())
            .unwrap_or(1);
        let delay_ms = after_secs
            .saturating_mul(1000)
            .saturating_mul(1u64 << (attempt - 1).min(10))
            .min(10_000);
        eprintln!("server busy (429); retry {attempt}/{retries} in {delay_ms} ms");
        std::thread::sleep(std::time::Duration::from_millis(delay_ms));
    };
    if let Some(cache) = resp.header("x-cache") {
        eprintln!(
            "x-cache: {cache}  x-key: {}",
            resp.header("x-key").unwrap_or("?")
        );
    }
    match resp.status {
        200 => {
            emit_report(args, &resp.body_str());
            std::process::exit(0);
        }
        // Backpressure gets its own exit code so retry loops can tell
        // "try again later" from "this request is broken".
        429 => {
            eprintln!("{}", resp.body_str());
            std::process::exit(3);
        }
        // Structural rejections, including a poisoned key: the request
        // (or its crash history) is the problem, not the server's load.
        400 | 404 | 405 | 413 | 422 => {
            eprintln!("{}", resp.body_str());
            std::process::exit(2);
        }
        _ => {
            eprintln!("{}", resp.body_str());
            std::process::exit(1);
        }
    }
}

/// Prints the report to stdout, or writes it (atomically) to `--out`.
fn emit_report(args: &[String], report: &str) {
    match flag_value(args, "--out") {
        Some(path) => {
            write_or_die(&path, report);
            eprintln!("wrote report to {path}");
        }
        None => println!("{report}"),
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let cmd = args.first().map(String::as_str).unwrap_or("all");
    if cmd == "job-exec" {
        // Hidden worker mode, spawned by `repro serve --sandbox`: one
        // canonical request on stdin, one result envelope on stdout.
        // Dispatched before any flag handling — its only interface is
        // the pipe protocol.
        apbench::job_exec_main();
    }
    let json_out = args.iter().any(|a| a == "--json");
    let ascii = args.iter().any(|a| a == "--ascii");
    let markdown = args.iter().any(|a| a == "--markdown");
    let trace_out = flag_value(&args, "--trace-out");
    let bench_out = flag_value(&args, "--bench-out");
    let md_out = flag_value(&args, "--md-out");
    if cmd == "scaling" {
        // Dispatches before the telemetry flags: `scaling` reads
        // `--sim-threads` as a comma list and manages the process-wide
        // default itself, one grid point at a time.
        scaling_cmd(&args);
    }
    let metrics_out = apply_telemetry_flags(&args);
    match cmd {
        "table1" => print!("{}", table1()),
        "fig6" => print!("{}", fig6()),
        "fig7" => {
            let bytes = match flag_value(&args, "--bytes") {
                Some(s) => s.parse().ok().filter(|&b| b > 0).unwrap_or_else(|| {
                    eprintln!("--bytes takes a message size in bytes (> 0), got '{s}'");
                    std::process::exit(2);
                }),
                None => 1600,
            };
            print!("{}", fig7(bytes));
        }
        "ablations" => {
            let scale = scale_or_die(&args);
            print!("{}", apbench::ablations(scale));
        }
        "compare" => compare_cmd(&args),
        "serve" => serve_cmd(&args),
        "submit" => submit_cmd(&args),
        "sweep" => sweep_cmd(&args),
        "fault" => fault_cmd(&args),
        "record" => record_cmd(&args),
        "replay" => replay_cmd(&args),
        "remodel" => remodel_cmd(&args),
        "table2" | "table3" | "fig8" | "all" | "bench" => {
            let scale = scale_or_die(&args);
            if cmd == "bench" && bench_out.is_none() {
                eprintln!("usage: repro bench --bench-out FILE [--scale test|paper] [--rev REV]");
                std::process::exit(2);
            }
            if trace_out.is_some() || bench_out.is_some() {
                // Every machine the suite builds records its timeline (the
                // bench report needs it for critical-path and divergence).
                apcore::set_timeline_default(true);
            }
            eprintln!("running the application suite at {scale:?} scale...");
            let t0 = Instant::now();
            let rows = run_suite(scale);
            eprintln!(
                "suite done in {:.1}s (all results verified)",
                t0.elapsed().as_secs_f64()
            );
            if let Some(path) = &trace_out {
                let refs: Vec<&apobs::Timeline> = rows.iter().map(|r| &r.timeline).collect();
                // Sampled counter tracks ride along in their own processes
                // after the per-workload ones (which hold pids 1..=N).
                let mut extra = Vec::new();
                for (i, r) in rows.iter().enumerate() {
                    if let Some(m) = &r.metrics {
                        let pid = (rows.len() + 1 + i) as u64;
                        extra.extend(apmon::perfetto_counter_events(&m.series, pid));
                    }
                }
                apobs::write_chrome_trace_with(Path::new(path), &refs, &extra)
                    .unwrap_or_else(|e| fail_io(ApError::io(path.clone(), e)));
                eprintln!("wrote Chrome trace to {path}");
            }
            if let Some(path) = &bench_out {
                let rev = flag_value(&args, "--rev");
                write_bench_report(Path::new(path), &rows, scale, rev.as_deref())
                    .unwrap_or_else(|e| fail_io(ApError::io(path.clone(), e)));
                eprintln!("wrote bench report to {path}");
            }
            emit_metrics(&args, metrics_out.as_deref(), &rows);
            if let Some(path) = &md_out {
                write_or_die(path, &markdown_report(&rows, scale));
                eprintln!("wrote Markdown report to {path}");
            }
            if json_out {
                println!("{}", suite_json(&rows));
                return;
            }
            match cmd {
                "bench" => {}
                "table2" if markdown => print!("{}", report::table2_markdown(&rows)),
                "table2" => print!("{}", table2(&rows)),
                "table3" if markdown => print!("{}", report::table3_markdown(&rows)),
                "table3" => print!("{}", table3(&rows)),
                "fig8" if markdown => print!("{}", report::fig8_markdown(&rows)),
                "fig8" if ascii => print!("{}", fig8_ascii(&rows)),
                "fig8" => print!("{}", fig8(&rows)),
                "all" if markdown => print!("{}", markdown_report(&rows, scale)),
                _ => {
                    print!("{}", table1());
                    println!();
                    print!("{}", fig6());
                    println!();
                    print!("{}", fig7(1600));
                    println!();
                    print!("{}", table2(&rows));
                    println!();
                    print!("{}", table3(&rows));
                    println!();
                    print!("{}", fig8(&rows));
                    println!();
                    print!("{}", fig8_ascii(&rows));
                    println!();
                    print!("{}", crosscheck(&rows));
                }
            }
        }
        other => {
            eprintln!("unknown command '{other}'");
            eprintln!(
                "usage: repro [table1|fig6|fig7|table2|table3|fig8|ablations|all|bench|compare|\
                 sweep|fault|record|replay|remodel|scaling] [--scale test|paper] [--json] [--ascii] \
                 [--markdown] [--trace-out FILE] [--bench-out FILE] [--rev REV] [--md-out FILE] \
                 [--threshold PCT] [--apps A,B] [--sizes default,4] [--factors 0.5,1.0] \
                 [--threads N] [--sim-threads N] [--faults SPEC.ron] [--fault-seed N] [--out FILE] \
                 [--metrics-out FILE] [--metrics-interval USECS] [--heatmap] [--progress] \
                 [--flight-recorder N] [--flight-dump FILE]"
            );
            std::process::exit(2);
        }
    }
}

//! `repro` — regenerate every table and figure of the AP1000+ paper.
//!
//! ```text
//! repro table1                 # machine specifications (static)
//! repro fig6                   # MLSim parameter files
//! repro fig7 [--bytes N]       # PUT communication model chains
//! repro table2 [--scale s]     # speedups vs AP1000 (runs the suite)
//! repro table3 [--scale s]     # per-PE communication statistics
//! repro fig8   [--scale s]     # normalized execution-time breakdown
//! repro fig8 --ascii           # the same as ASCII stacked bars
//! repro all    [--scale s]     # everything above, one suite run
//! ```
//!
//! Suite-running commands also accept `--json` (machine-readable rows on
//! stdout) and `--trace-out FILE` (record sim-time event timelines on
//! every emulator run and write one Chrome-trace JSON file, one process
//! group per workload, viewable in Perfetto).
//!
//! `--scale test` uses small instances (seconds); the default `paper`
//! scale uses the reduced-but-paper-shaped instances documented in
//! DESIGN.md/EXPERIMENTS.md.

use apbench::{
    crosscheck, fig6, fig7, fig8, fig8_ascii, parse_scale, run_suite, suite_json, table1, table2,
    table3,
};
use std::path::Path;
use std::time::Instant;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let cmd = args.first().map(String::as_str).unwrap_or("all");
    let json_out = args.iter().any(|a| a == "--json");
    let ascii = args.iter().any(|a| a == "--ascii");
    let trace_out = args
        .iter()
        .position(|a| a == "--trace-out")
        .and_then(|i| args.get(i + 1))
        .cloned();
    match cmd {
        "table1" => print!("{}", table1()),
        "fig6" => print!("{}", fig6()),
        "fig7" => {
            let bytes = args
                .iter()
                .position(|a| a == "--bytes")
                .and_then(|i| args.get(i + 1))
                .and_then(|s| s.parse().ok())
                .unwrap_or(1600);
            print!("{}", fig7(bytes));
        }
        "ablations" => {
            let scale = parse_scale(&args);
            print!("{}", apbench::ablations(scale));
        }
        "table2" | "table3" | "fig8" | "all" => {
            let scale = parse_scale(&args);
            if trace_out.is_some() {
                // Every machine the suite builds records its timeline.
                apcore::set_timeline_default(true);
            }
            eprintln!("running the application suite at {scale:?} scale...");
            let t0 = Instant::now();
            let rows = run_suite(scale);
            eprintln!(
                "suite done in {:.1}s (all results verified)",
                t0.elapsed().as_secs_f64()
            );
            if let Some(path) = &trace_out {
                let refs: Vec<&apobs::Timeline> = rows.iter().map(|r| &r.timeline).collect();
                apobs::write_chrome_trace(Path::new(path), &refs).expect("write trace file");
                eprintln!("wrote Chrome trace to {path}");
            }
            if json_out {
                println!("{}", suite_json(&rows));
                return;
            }
            match cmd {
                "table2" => print!("{}", table2(&rows)),
                "table3" => print!("{}", table3(&rows)),
                "fig8" if ascii => print!("{}", fig8_ascii(&rows)),
                "fig8" => print!("{}", fig8(&rows)),
                _ => {
                    print!("{}", table1());
                    println!();
                    print!("{}", fig6());
                    println!();
                    print!("{}", fig7(1600));
                    println!();
                    print!("{}", table2(&rows));
                    println!();
                    print!("{}", table3(&rows));
                    println!();
                    print!("{}", fig8(&rows));
                    println!();
                    print!("{}", fig8_ascii(&rows));
                    println!();
                    print!("{}", crosscheck(&rows));
                }
            }
        }
        other => {
            eprintln!("unknown command '{other}'");
            eprintln!(
                "usage: repro [table1|fig6|fig7|table2|table3|fig8|ablations|all] \
                 [--scale test|paper] [--json] [--ascii] [--trace-out FILE]"
            );
            std::process::exit(2);
        }
    }
}

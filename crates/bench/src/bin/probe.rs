//! Dev probe: per-model breakdown for one workload (not part of the
//! reproduction tables; useful when calibrating).
//!
//! ```text
//! probe [WORKLOAD] [--paper] [--json] [--trace-out FILE]
//! ```
//!
//! `--json` prints the breakdown as a JSON object instead of text;
//! `--trace-out FILE` records sim-time event timelines (emulator plus the
//! three MLSim replays) and writes a Chrome-trace JSON file that opens in
//! Perfetto or `chrome://tracing`.

use apapps::Scale;
use aputil::Json;
use mlsim::{replay_observed, ModelParams};
use std::path::Path;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let trace_pos = args.iter().position(|a| a == "--trace-out");
    let trace_out = trace_pos.and_then(|i| args.get(i + 1)).cloned();
    let name = args
        .iter()
        .enumerate()
        .find(|(i, a)| !a.starts_with("--") && trace_pos.is_none_or(|p| *i != p + 1))
        .map(|(_, a)| a.as_str())
        .unwrap_or("SP");
    let scale = if args.iter().any(|a| a == "--paper") {
        Scale::Paper
    } else {
        Scale::Test
    };
    let json_out = args.iter().any(|a| a == "--json");
    if trace_out.is_some() {
        // Every machine built from here on records its event timeline.
        apcore::set_timeline_default(true);
    }

    let suite = apapps::standard_suite(scale);
    let w = suite
        .iter()
        .find(|w| w.name() == name)
        .unwrap_or_else(|| panic!("no workload {name}"));
    let report = w.run().expect("run failed");

    let record = trace_out.is_some();
    let replays: Vec<_> = [
        ModelParams::ap1000(),
        ModelParams::ap1000_star(),
        ModelParams::ap1000_plus(),
    ]
    .into_iter()
    .map(|m| replay_observed(&report.trace, &m, record).expect("replay failed"))
    .collect();

    if let Some(path) = &trace_out {
        let mut emu = report.timeline.clone();
        emu.source = format!("emulator/{name}");
        let mut tls = vec![emu];
        for r in &replays {
            let mut t = r.timeline.clone();
            t.source = format!("mlsim/{}", r.model);
            tls.push(t);
        }
        let refs: Vec<&apobs::Timeline> = tls.iter().collect();
        apobs::write_chrome_trace(Path::new(path), &refs).expect("write trace file");
        eprintln!("wrote Chrome trace to {path}");
    }

    if json_out {
        let models: Vec<Json> = replays
            .iter()
            .map(|r| {
                Json::obj(vec![
                    ("model", Json::Str(r.model.clone())),
                    ("total_ns", Json::U(r.total.as_nanos())),
                    ("mean_exec_ns", Json::U(r.mean(|b| b.exec).as_nanos())),
                    ("mean_rts_ns", Json::U(r.mean(|b| b.rts).as_nanos())),
                    (
                        "mean_overhead_ns",
                        Json::U(r.mean(|b| b.overhead).as_nanos()),
                    ),
                    ("mean_idle_ns", Json::U(r.mean(|b| b.idle).as_nanos())),
                ])
            })
            .collect();
        let out = Json::obj(vec![
            ("workload", Json::Str(name.to_string())),
            ("emulator_total_ns", Json::U(report.total_time.as_nanos())),
            ("counters", report.counters.to_json()),
            ("models", Json::Arr(models)),
        ]);
        println!("{out}");
        return;
    }

    println!("emulator total {}", report.total_time);
    for r in &replays {
        let mean = |f: fn(&mlsim::PeBreakdown) -> aputil::SimTime| r.mean(f);
        println!(
            "{:8} total {:>12}  exec {:>12} rts {:>12} overhead {:>12} idle {:>12}",
            r.model,
            r.total.to_string(),
            mean(|b| b.exec).to_string(),
            mean(|b| b.rts).to_string(),
            mean(|b| b.overhead).to_string(),
            mean(|b| b.idle).to_string()
        );
    }
    println!("\ncounters:\n{}", report.counters.render());
}

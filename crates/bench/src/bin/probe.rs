//! Dev probe: per-model breakdown for one workload (not part of the
//! reproduction tables; useful when calibrating).

use apapps::Scale;
use mlsim::{replay, ModelParams};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let name = args.first().map(String::as_str).unwrap_or("SP");
    let scale = if args.iter().any(|a| a == "--paper") {
        Scale::Paper
    } else {
        Scale::Test
    };
    let suite = apapps::standard_suite(scale);
    let w = suite
        .iter()
        .find(|w| w.name() == name)
        .unwrap_or_else(|| panic!("no workload {name}"));
    let report = w.run().expect("run failed");
    println!("emulator total {}", report.total_time);
    for m in [ModelParams::ap1000(), ModelParams::ap1000_star(), ModelParams::ap1000_plus()] {
        let r = replay(&report.trace, &m).expect("replay failed");
        let mean = |f: fn(&mlsim::PeBreakdown) -> aputil::SimTime| r.mean(f);
        println!(
            "{:8} total {:>12}  exec {:>12} rts {:>12} overhead {:>12} idle {:>12}",
            r.model,
            r.total.to_string(),
            mean(|b| b.exec).to_string(),
            mean(|b| b.rts).to_string(),
            mean(|b| b.overhead).to_string(),
            mean(|b| b.idle).to_string()
        );
    }
}

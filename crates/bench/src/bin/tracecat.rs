//! `tracecat` — inspect binary `.evtrace` recordings.
//!
//! ```text
//! tracecat header TRACE.evtrace                 # header + section inventory
//! tracecat stats  TRACE.evtrace [--min-ratio R] # size vs JSON equivalent
//! ```
//!
//! `stats` measures the recording against the same data serialized the
//! pre-binary way — Chrome-trace JSON for the event timeline plus the
//! versioned JSON op codec — and prints the compression ratio.
//! `--min-ratio R` exits 1 when the ratio falls below `R`; CI uses it to
//! pin the format's ≥5× size win.

use apbench::record::{header_text, trace_stats};
use aptrace::EvTrace;
use std::path::Path;

fn flag_value(args: &[String], flag: &str) -> Option<String> {
    args.iter()
        .position(|a| a == flag)
        .and_then(|i| args.get(i + 1))
        .cloned()
}

fn usage() -> ! {
    eprintln!("usage: tracecat (header|stats) TRACE.evtrace [--min-ratio R]");
    std::process::exit(2);
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let (Some(cmd), Some(path)) = (args.first(), args.get(1).filter(|a| !a.starts_with("--")))
    else {
        usage();
    };
    if !matches!(cmd.as_str(), "header" | "stats") {
        usage();
    }
    // Validate flags before the (possibly large) trace read: a typo'd
    // `--min-ratio` must be diagnosed even when the file is missing, and
    // without paying for a decode first.
    let min_ratio: Option<f64> = flag_value(&args, "--min-ratio").map(|s| {
        s.parse::<f64>()
            .ok()
            .filter(|r| r.is_finite() && *r >= 0.0)
            .unwrap_or_else(|| {
                eprintln!("--min-ratio takes a non-negative number, got '{s}'");
                std::process::exit(2);
            })
    });
    let doc = EvTrace::read_file(Path::new(path)).unwrap_or_else(|e| {
        eprintln!("{path}: {e}");
        std::process::exit(1);
    });
    match cmd.as_str() {
        "header" => print!("{}", header_text(&doc)),
        "stats" => {
            let bytes = std::fs::metadata(path).map(|m| m.len()).unwrap_or(0);
            let st = trace_stats(&doc, bytes);
            println!("binary: {} bytes ({} events)", st.binary_bytes, st.events);
            println!(
                "json equivalent: {} bytes (timeline {} + ops {})",
                st.json_bytes(),
                st.json_timeline_bytes,
                st.json_ops_bytes
            );
            println!("ratio: {:.1}x", st.ratio());
            if let Some(min) = min_ratio {
                if st.ratio() < min {
                    eprintln!(
                        "FAIL: ratio {:.1}x is below the required {min}x",
                        st.ratio()
                    );
                    std::process::exit(1);
                }
            }
        }
        _ => usage(),
    }
}

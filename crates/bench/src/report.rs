//! Versioned machine-readable bench reports and the regression comparer.
//!
//! `repro --bench-out BENCH_<rev>.json` serializes a whole suite run —
//! Table-2/3 numbers, Figure-8 rows, per-segment PUT/GET latency
//! histograms, critical-path attribution and the emulator-vs-MLSim
//! divergence — under a versioned schema, seeding the repo's performance
//! trajectory. `repro compare <base.json> <current.json>` diffs two such
//! reports and exits nonzero when any total regresses past a threshold;
//! CI runs it against the checked-in `results/BENCH_baseline.json`.
//!
//! The schema is documented in DESIGN.md §"Bench report schema".

use crate::ExperimentRow;
use apapps::Scale;
use aputil::Json;
use std::path::Path;

/// Schema identifier stamped into every bench report.
pub const BENCH_SCHEMA: &str = "ap1000plus.bench";
/// Current schema version. Bump on breaking layout changes; `compare`
/// refuses to diff reports whose versions differ.
pub const BENCH_SCHEMA_VERSION: u64 = 1;

/// Builds the versioned bench-report document for a suite run.
pub fn bench_report(rows: &[ExperimentRow], scale: Scale, rev: Option<&str>) -> Json {
    let mut members = vec![
        ("schema", Json::from(BENCH_SCHEMA)),
        ("version", Json::from(BENCH_SCHEMA_VERSION)),
        (
            "scale",
            Json::from(format!("{scale:?}").to_ascii_lowercase()),
        ),
    ];
    if let Some(rev) = rev {
        members.push(("rev", Json::from(rev)));
    }
    // Strip host wall-clock from the versioned report: baselines are
    // checked in and sweep outputs are compared byte-for-byte across
    // thread counts, so only simulated (reproducible) numbers belong.
    members.push((
        "apps",
        Json::Arr(rows.iter().map(|r| r.to_json_with_host(false)).collect()),
    ));
    // Machine-wide aggregate of every row's hardware counters, merged in
    // row (grid) order. `compare` ignores it, so old baselines still diff
    // cleanly against reports that carry it.
    let mut totals = apobs::Counters::new();
    for r in rows {
        totals.merge(&r.counters);
    }
    members.push(("totals", totals.to_json()));
    Json::obj(members)
}

/// Writes [`bench_report`] to `path` atomically (temp file + rename):
/// comparisons against checked-in baselines read these files, so a
/// crash mid-write must never leave a truncated report behind.
pub fn write_bench_report(
    path: &Path,
    rows: &[ExperimentRow],
    scale: Scale,
    rev: Option<&str>,
) -> std::io::Result<()> {
    aputil::write_atomic(path, bench_report(rows, scale, rev).to_string().as_bytes())
}

/// One metric that got slower than the baseline allows.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Regression {
    /// Application (Table-2 row) the metric belongs to.
    pub app: String,
    /// Metric name (`emulator_total_ns` or `<model> total_ns`).
    pub metric: String,
    /// Baseline nanoseconds.
    pub base_ns: u64,
    /// Current nanoseconds.
    pub cur_ns: u64,
}

impl Regression {
    /// Slowdown over baseline, in percent. A zero-ns baseline has no
    /// finite slowdown: any nonzero current value is reported as
    /// `f64::INFINITY` (and regresses at every threshold); zero-to-zero
    /// is 0%.
    pub fn pct(&self) -> f64 {
        if self.base_ns == 0 {
            return if self.cur_ns == 0 { 0.0 } else { f64::INFINITY };
        }
        (self.cur_ns as f64 / self.base_ns as f64 - 1.0) * 100.0
    }

    fn pct_display(&self) -> String {
        if self.pct().is_infinite() {
            "new cost on a 0 ns baseline".to_string()
        } else {
            format!("+{:.1}%", self.pct())
        }
    }
}

/// Outcome of diffing two bench reports.
#[derive(Clone, Debug, Default)]
pub struct CompareReport {
    /// Threshold the comparison ran with, in percent.
    pub threshold_pct: f64,
    /// Metrics compared across the two reports.
    pub checked: usize,
    /// Metrics beyond the threshold, worst first.
    pub regressions: Vec<Regression>,
    /// Apps present in the baseline but absent from the current report.
    pub missing_apps: Vec<String>,
}

impl CompareReport {
    /// True when nothing regressed and no app disappeared.
    pub fn pass(&self) -> bool {
        self.regressions.is_empty() && self.missing_apps.is_empty()
    }

    /// Human rendering, one line per finding.
    pub fn render(&self) -> String {
        let mut out = format!(
            "compared {} metrics at +{:.1}% threshold: {}\n",
            self.checked,
            self.threshold_pct,
            if self.pass() { "PASS" } else { "FAIL" }
        );
        for app in &self.missing_apps {
            out.push_str(&format!("  MISSING  {app}: not in current report\n"));
        }
        for r in &self.regressions {
            out.push_str(&format!(
                "  REGRESSION  {} {}: {} -> {} ns ({})\n",
                r.app,
                r.metric,
                r.base_ns,
                r.cur_ns,
                r.pct_display()
            ));
        }
        out
    }
}

fn app_metrics(app: &Json) -> Vec<(String, u64)> {
    let mut m = Vec::new();
    if let Some(v) = app.get("emulator_total_ns").and_then(Json::as_u64) {
        m.push(("emulator_total_ns".to_string(), v));
    }
    if let Some(models) = app.get("models").and_then(Json::as_arr) {
        for model in models {
            if let (Some(name), Some(total)) = (
                model.get("model").and_then(Json::as_str),
                model.get("total_ns").and_then(Json::as_u64),
            ) {
                m.push((format!("{name} total_ns"), total));
            }
        }
    }
    m
}

fn check_schema(doc: &Json, which: &str) -> Result<(), String> {
    match doc.get("schema").and_then(Json::as_str) {
        Some(BENCH_SCHEMA) => {}
        other => return Err(format!("{which}: not a {BENCH_SCHEMA} report ({other:?})")),
    }
    match doc.get("version").and_then(Json::as_u64) {
        Some(BENCH_SCHEMA_VERSION) => Ok(()),
        other => Err(format!(
            "{which}: schema version {other:?}, expected {BENCH_SCHEMA_VERSION}"
        )),
    }
}

/// Diffs two bench reports. A metric regresses when
/// `current > baseline * (1 + threshold_pct/100)`; apps in the baseline
/// but missing from the current report also fail the comparison. Errors
/// on schema/version mismatch.
pub fn compare_reports(
    base: &Json,
    current: &Json,
    threshold_pct: f64,
) -> Result<CompareReport, String> {
    check_schema(base, "baseline")?;
    check_schema(current, "current")?;
    let apps = |doc: &Json, which: &str| -> Result<Vec<Json>, String> {
        doc.get("apps")
            .and_then(Json::as_arr)
            .map(<[Json]>::to_vec)
            .ok_or_else(|| format!("{which}: no apps array"))
    };
    let base_apps = apps(base, "baseline")?;
    let cur_apps = apps(current, "current")?;
    let name_of = |app: &Json| {
        app.get("app")
            .and_then(Json::as_str)
            .unwrap_or("?")
            .to_string()
    };
    let mut out = CompareReport {
        threshold_pct,
        ..CompareReport::default()
    };
    let limit = 1.0 + threshold_pct / 100.0;
    for b in &base_apps {
        let name = name_of(b);
        let Some(c) = cur_apps.iter().find(|c| name_of(c) == name) else {
            out.missing_apps.push(name);
            continue;
        };
        let cur_metrics = app_metrics(c);
        for (metric, base_ns) in app_metrics(b) {
            let Some((_, cur_ns)) = cur_metrics.iter().find(|(m, _)| *m == metric) else {
                continue;
            };
            out.checked += 1;
            // A 0 ns baseline can't scale by a percentage threshold: any
            // nonzero current value is new cost and regresses outright.
            let regressed = if base_ns == 0 {
                *cur_ns > 0
            } else {
                *cur_ns as f64 > base_ns as f64 * limit
            };
            if regressed {
                out.regressions.push(Regression {
                    app: name.clone(),
                    metric,
                    base_ns,
                    cur_ns: *cur_ns,
                });
            }
        }
    }
    out.regressions.sort_by(|a, b| {
        b.pct()
            .partial_cmp(&a.pct())
            .unwrap_or(std::cmp::Ordering::Equal)
            .then_with(|| a.app.cmp(&b.app))
    });
    Ok(out)
}

/// Table 2 as a GitHub-flavored-Markdown table.
pub fn table2_markdown(rows: &[ExperimentRow]) -> String {
    let mut s = String::new();
    s.push_str("| App | PE | AP1000+ | AP1000* |\n");
    s.push_str("| --- | ---: | ---: | ---: |\n");
    for r in rows {
        let (plus, star) = r.table2();
        s.push_str(&format!(
            "| {} | {} | {plus:.2} | {star:.2} |\n",
            r.name, r.pe
        ));
    }
    s
}

/// Table 3 as a GitHub-flavored-Markdown table.
pub fn table3_markdown(rows: &[ExperimentRow]) -> String {
    let mut s = String::new();
    s.push_str("| App | PE | SEND | Gop | VGop | Sync | PUT | PUTS | GET | GETS | MsgBytes |\n");
    s.push_str("| --- | ---: | ---: | ---: | ---: | ---: | ---: | ---: | ---: | ---: | ---: |\n");
    for r in rows {
        let t = &r.stats;
        s.push_str(&format!(
            "| {} | {} | {:.1} | {:.1} | {:.1} | {:.1} | {:.1} | {:.1} | {:.1} | {:.1} | {:.1} |\n",
            r.name, r.pe, t.send, t.gop, t.vgop, t.sync, t.put, t.puts, t.get, t.gets, t.msg_size
        ));
    }
    s
}

/// Figure 8 as a GitHub-flavored-Markdown table (normalized to
/// AP1000+ = 100).
pub fn fig8_markdown(rows: &[ExperimentRow]) -> String {
    let mut s = String::new();
    s.push_str("| App | Model | Exec | RTS | Overhead | Idle | Total |\n");
    s.push_str("| --- | --- | ---: | ---: | ---: | ---: | ---: |\n");
    for r in rows {
        let (p, st) = r.fig8();
        for (label, row) in [("AP1000+", p), ("AP1000*", st)] {
            s.push_str(&format!(
                "| {} | {label} | {:.1} | {:.1} | {:.1} | {:.1} | {:.1} |\n",
                r.name, row.exec, row.rts, row.overhead, row.idle, row.total
            ));
        }
    }
    s
}

/// The full Markdown report (Table 2, Table 3, Figure 8) for `results/`.
pub fn markdown_report(rows: &[ExperimentRow], scale: Scale) -> String {
    format!(
        "# AP1000+ reproduction results ({scale:?} scale)\n\n\
         ## Table 2: speedup vs AP1000\n\n{}\n\
         ## Table 3: application statistics (per PE)\n\n{}\n\
         ## Figure 8: normalized execution-time breakdown (AP1000+ = 100)\n\n{}",
        table2_markdown(rows),
        table3_markdown(rows),
        fig8_markdown(rows)
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    fn app_json(name: &str, emu_ns: u64, plus_ns: u64) -> Json {
        Json::obj(vec![
            ("app", Json::from(name)),
            ("emulator_total_ns", Json::from(emu_ns)),
            (
                "models",
                Json::Arr(vec![Json::obj(vec![
                    ("model", Json::from("ap1000+")),
                    ("total_ns", Json::from(plus_ns)),
                ])]),
            ),
        ])
    }

    fn report_json(apps: Vec<Json>) -> Json {
        Json::obj(vec![
            ("schema", Json::from(BENCH_SCHEMA)),
            ("version", Json::from(BENCH_SCHEMA_VERSION)),
            ("scale", Json::from("test")),
            ("apps", Json::Arr(apps)),
        ])
    }

    #[test]
    fn identical_reports_pass() {
        let r = report_json(vec![app_json("EP", 1000, 500)]);
        let cmp = compare_reports(&r, &r, 10.0).unwrap();
        assert!(cmp.pass());
        assert_eq!(cmp.checked, 2);
    }

    #[test]
    fn injected_slowdown_fails_and_ranks_worst_first() {
        let base = report_json(vec![app_json("EP", 1000, 500), app_json("CG", 2000, 900)]);
        // EP emulator +50%, CG model +20%; CG emulator improves.
        let cur = report_json(vec![app_json("EP", 1500, 500), app_json("CG", 1800, 1080)]);
        let cmp = compare_reports(&base, &cur, 10.0).unwrap();
        assert!(!cmp.pass());
        assert_eq!(cmp.regressions.len(), 2);
        assert_eq!(cmp.regressions[0].app, "EP");
        assert_eq!(cmp.regressions[0].metric, "emulator_total_ns");
        assert!((cmp.regressions[0].pct() - 50.0).abs() < 1e-9);
        assert_eq!(cmp.regressions[1].app, "CG");
        assert!(cmp.render().contains("REGRESSION"));
    }

    #[test]
    fn threshold_tolerates_small_slowdowns() {
        let base = report_json(vec![app_json("EP", 1000, 500)]);
        let cur = report_json(vec![app_json("EP", 1090, 540)]);
        assert!(compare_reports(&base, &cur, 10.0).unwrap().pass());
        assert!(!compare_reports(&base, &cur, 5.0).unwrap().pass());
    }

    #[test]
    fn zero_baseline_regresses_on_any_new_cost() {
        let base = report_json(vec![app_json("EP", 0, 0)]);
        let cur = report_json(vec![app_json("EP", 1, 0)]);
        let cmp = compare_reports(&base, &cur, 10.0).unwrap();
        assert!(!cmp.pass(), "new cost on a 0 ns baseline must regress");
        assert_eq!(cmp.regressions.len(), 1);
        let r = &cmp.regressions[0];
        assert!(r.pct().is_infinite() && r.pct() > 0.0);
        // No inf/NaN leaks into the rendering.
        let rendered = cmp.render();
        assert!(rendered.contains("0 ns baseline"), "{rendered}");
        assert!(
            !rendered.contains("inf") && !rendered.contains("NaN"),
            "{rendered}"
        );
        // Zero-to-zero is not a regression.
        let cmp = compare_reports(&base, &base, 10.0).unwrap();
        assert!(cmp.pass());
        assert_eq!(
            Regression {
                app: "EP".into(),
                metric: "emulator_total_ns".into(),
                base_ns: 0,
                cur_ns: 0,
            }
            .pct(),
            0.0
        );
    }

    #[test]
    fn missing_app_fails() {
        let base = report_json(vec![app_json("EP", 1000, 500), app_json("CG", 2000, 900)]);
        let cur = report_json(vec![app_json("EP", 1000, 500)]);
        let cmp = compare_reports(&base, &cur, 10.0).unwrap();
        assert!(!cmp.pass());
        assert_eq!(cmp.missing_apps, ["CG"]);
    }

    #[test]
    fn schema_mismatch_is_an_error() {
        let good = report_json(vec![]);
        let bad = Json::obj(vec![
            ("schema", Json::from("something.else")),
            ("version", Json::from(1u64)),
        ]);
        assert!(compare_reports(&bad, &good, 10.0).is_err());
        let wrong_version = Json::obj(vec![
            ("schema", Json::from(BENCH_SCHEMA)),
            ("version", Json::from(99u64)),
            ("apps", Json::Arr(vec![])),
        ]);
        assert!(compare_reports(&good, &wrong_version, 10.0).is_err());
    }
}

//! Communication registers with present bits.
//!
//! Paper §4.4: *"The AP1000+ has special registers exclusively for
//! communication. 128 4-byte communication registers for each MC are
//! allocated in shared memory space. … Each communication register has a
//! present bit (p-bit). The p-bit is set to 1 when data is stored and to 0
//! when data is read. If the p-bit is 0, the processor automatically
//! retries loading the communication register until the p-bit becomes 1."*
//!
//! Reads are therefore *consuming* and *blocking*; the blocking retry is
//! modeled by returning `None`, on which the runtime suspends the reading
//! cell until a store arrives.

/// Number of communication registers per MC.
pub const NUM_COMM_REGS: usize = 128;

/// The bank of 128 four-byte communication registers of one cell.
///
/// # Examples
///
/// ```
/// use apmem::CommRegs;
///
/// let mut regs = CommRegs::new();
/// assert_eq!(regs.load(3), None);          // empty: p-bit clear, would retry
/// regs.store(3, 42);
/// assert_eq!(regs.load(3), Some(42));      // consumes, clears p-bit
/// assert_eq!(regs.load(3), None);
/// ```
#[derive(Clone, Debug)]
pub struct CommRegs {
    value: [u32; NUM_COMM_REGS],
    present: [bool; NUM_COMM_REGS],
    stores: u64,
    loads: u64,
}

impl CommRegs {
    /// A bank with all p-bits clear.
    pub fn new() -> Self {
        CommRegs {
            value: [0; NUM_COMM_REGS],
            present: [false; NUM_COMM_REGS],
            stores: 0,
            loads: 0,
        }
    }

    /// Stores `v` into register `idx`, setting its p-bit.
    ///
    /// Returns `true` if the register already held un-consumed data (the
    /// store overwrites it — software protocols must avoid this, and tests
    /// assert on it).
    ///
    /// # Panics
    ///
    /// Panics if `idx >= NUM_COMM_REGS`.
    pub fn store(&mut self, idx: usize, v: u32) -> bool {
        assert!(
            idx < NUM_COMM_REGS,
            "communication register {idx} out of range"
        );
        let clobbered = self.present[idx];
        self.value[idx] = v;
        self.present[idx] = true;
        self.stores += 1;
        clobbered
    }

    /// Attempts to load register `idx`. `Some(v)` consumes the value and
    /// clears the p-bit; `None` means the p-bit is clear and the hardware
    /// would retry (the caller should block).
    ///
    /// # Panics
    ///
    /// Panics if `idx >= NUM_COMM_REGS`.
    pub fn load(&mut self, idx: usize) -> Option<u32> {
        assert!(
            idx < NUM_COMM_REGS,
            "communication register {idx} out of range"
        );
        if !self.present[idx] {
            return None;
        }
        self.present[idx] = false;
        self.loads += 1;
        Some(self.value[idx])
    }

    /// Non-consuming inspection of a register's p-bit.
    pub fn is_present(&self, idx: usize) -> bool {
        idx < NUM_COMM_REGS && self.present[idx]
    }

    /// Stores an 8-byte value into the even-aligned register pair
    /// `(idx, idx+1)` — §4.4 allows 4- or 8-byte access.
    ///
    /// # Panics
    ///
    /// Panics if `idx` is odd or `idx + 1 >= NUM_COMM_REGS`.
    pub fn store_pair(&mut self, idx: usize, v: u64) -> bool {
        assert!(
            idx.is_multiple_of(2),
            "8-byte comm-reg access must be even-aligned"
        );
        let lo = self.store(idx, v as u32);
        let hi = self.store(idx + 1, (v >> 32) as u32);
        lo || hi
    }

    /// Loads an 8-byte value from the pair `(idx, idx+1)`; both p-bits must
    /// be set, and both are consumed.
    ///
    /// # Panics
    ///
    /// Panics if `idx` is odd or `idx + 1 >= NUM_COMM_REGS`.
    pub fn load_pair(&mut self, idx: usize) -> Option<u64> {
        assert!(
            idx.is_multiple_of(2),
            "8-byte comm-reg access must be even-aligned"
        );
        if !self.is_present(idx) || !self.is_present(idx + 1) {
            return None;
        }
        let lo = self.load(idx).expect("p-bit checked") as u64;
        let hi = self.load(idx + 1).expect("p-bit checked") as u64;
        Some(lo | (hi << 32))
    }

    /// `(stores, loads)` performed, for statistics.
    pub fn counters(&self) -> (u64, u64) {
        (self.stores, self.loads)
    }
}

impl Default for CommRegs {
    fn default() -> Self {
        CommRegs::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn store_load_consumes() {
        let mut r = CommRegs::new();
        assert!(!r.store(0, 7));
        assert!(r.is_present(0));
        assert_eq!(r.load(0), Some(7));
        assert!(!r.is_present(0));
        assert_eq!(r.load(0), None);
        assert_eq!(r.counters(), (1, 1));
    }

    #[test]
    fn overwrite_reports_clobber() {
        let mut r = CommRegs::new();
        assert!(!r.store(5, 1));
        assert!(r.store(5, 2));
        assert_eq!(r.load(5), Some(2));
    }

    #[test]
    fn pair_access() {
        let mut r = CommRegs::new();
        let v = 0xdead_beef_cafe_f00du64;
        assert!(!r.store_pair(2, v));
        assert_eq!(r.load_pair(2), Some(v));
        assert_eq!(r.load_pair(2), None);
    }

    #[test]
    fn pair_requires_both_present() {
        let mut r = CommRegs::new();
        r.store(4, 1);
        assert_eq!(r.load_pair(4), None);
        // The half store must not have been consumed by the failed pair load.
        assert!(r.is_present(4));
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_panics() {
        let mut r = CommRegs::new();
        r.store(NUM_COMM_REGS, 0);
    }

    #[test]
    #[should_panic(expected = "even-aligned")]
    fn odd_pair_panics() {
        let mut r = CommRegs::new();
        r.store_pair(1, 0);
    }
}

//! The MC's MMU: page table, frame allocator, and direct-mapped TLB.
//!
//! Paper §4.1: *"The MC has a translation lookaside buffer (TLB), which is
//! direct-mapped and has 256 entries for every 4-kilobyte page and 64
//! entries for every 256-kilobyte page."* Both the page table walk and the
//! TLB are modeled; timing (the "walker" cost on a miss) is charged by the
//! caller from the [`Translation::tlb_hit`] outcome so the MMU itself stays
//! purely functional.

use crate::memory::{MemError, FRAME_SIZE};
use aputil::{PAddr, VAddr};
use std::collections::BTreeMap;

/// Small (4 KB) page: shift and TLB geometry.
const SMALL_SHIFT: u32 = 12;
/// Large (256 KB) page shift.
const LARGE_SHIFT: u32 = 18;
/// Direct-mapped TLB entries for small pages.
const SMALL_TLB_ENTRIES: usize = 256;
/// Direct-mapped TLB entries for large pages.
const LARGE_TLB_ENTRIES: usize = 64;

/// Page size selector for mappings.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum PageSize {
    /// 4 KB page (256 direct-mapped TLB entries).
    Small,
    /// 256 KB page (64 direct-mapped TLB entries).
    Large,
}

impl PageSize {
    /// Page size in bytes.
    pub const fn bytes(self) -> u64 {
        match self {
            PageSize::Small => 1 << SMALL_SHIFT,
            PageSize::Large => 1 << LARGE_SHIFT,
        }
    }
}

/// Result of one address translation.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct Translation {
    /// The physical address.
    pub paddr: PAddr,
    /// Whether the TLB hit; a miss costs the caller a page-table walk.
    pub tlb_hit: bool,
    /// Bytes remaining in the page from `paddr` (DMA engines translate once
    /// per page run, not once per byte).
    pub run: u64,
}

/// TLB performance counters.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub struct TlbStats {
    /// Translations that hit the TLB.
    pub hits: u64,
    /// Translations that required a page-table walk.
    pub misses: u64,
    /// Translations that faulted (no mapping).
    pub faults: u64,
}

#[derive(Clone, Copy, Debug)]
struct PageEntry {
    pframe: u64, // physical base of the page
    size: PageSize,
}

#[derive(Clone, Copy, Debug)]
struct TlbLine {
    vpn: u64,
    pframe: u64,
}

/// Per-cell MMU: page table, physical-frame allocator, and the
/// direct-mapped two-level TLB.
///
/// Logical address space is laid out by [`Mmu::map_anywhere`], which the
/// runtime's allocator uses: it grabs fresh logical pages backed by fresh
/// physical frames. Address 0 is intentionally never mapped so that
/// [`VAddr::NULL`] always faults if dereferenced (it is the "no flag" / ack
/// sentinel, not a real location).
#[derive(Clone, Debug)]
pub struct Mmu {
    table: BTreeMap<u64, PageEntry>, // key: vaddr >> SMALL_SHIFT of page base
    small_tlb: Vec<Option<TlbLine>>,
    large_tlb: Vec<Option<TlbLine>>,
    next_vaddr: u64,
    next_frame: u64,
    dram_size: u64,
    stats: TlbStats,
}

impl Mmu {
    /// Creates an MMU managing `dram_size` bytes of physical memory.
    /// Logical addresses are handed out starting at 64 KB (the first 16
    /// small pages are a guard region).
    pub fn new(dram_size: u64) -> Self {
        Mmu {
            table: BTreeMap::new(),
            small_tlb: vec![None; SMALL_TLB_ENTRIES],
            large_tlb: vec![None; LARGE_TLB_ENTRIES],
            next_vaddr: 0x1_0000,
            next_frame: 0,
            dram_size,
            stats: TlbStats::default(),
        }
    }

    /// TLB counters so far.
    pub fn stats(&self) -> TlbStats {
        self.stats
    }

    /// Physical bytes allocated so far.
    pub fn allocated_bytes(&self) -> u64 {
        self.next_frame
    }

    /// Maps `len` bytes of fresh logical memory and returns its base.
    /// Regions of 256 KB or more use large pages (fewer TLB entries, as the
    /// paper intends for big arrays).
    ///
    /// # Errors
    ///
    /// [`MemError::OutOfFrames`] when the physical allocator exhausts DRAM.
    pub fn map_anywhere(&mut self, len: u64) -> Result<VAddr, MemError> {
        if len == 0 {
            return Err(MemError::OutOfFrames { requested: 0 });
        }
        let size = if len >= PageSize::Large.bytes() {
            PageSize::Large
        } else {
            PageSize::Small
        };
        let page_bytes = size.bytes();
        // Align the logical cursor.
        let base = self.next_vaddr.div_ceil(page_bytes) * page_bytes;
        let npages = len.div_ceil(page_bytes);
        let phys_len = npages * page_bytes;
        let pbase = self.next_frame.div_ceil(page_bytes) * page_bytes;
        if pbase + phys_len > self.dram_size {
            return Err(MemError::OutOfFrames { requested: len });
        }
        for i in 0..npages {
            let v = base + i * page_bytes;
            let p = pbase + i * page_bytes;
            self.table
                .insert(v >> SMALL_SHIFT, PageEntry { pframe: p, size });
        }
        self.next_vaddr = base + phys_len;
        self.next_frame = pbase + phys_len;
        Ok(VAddr::new(base))
    }

    fn lookup_entry(&self, vaddr: u64) -> Option<(u64, PageEntry)> {
        // Small-page key first; if the covering page is large, its entry is
        // keyed at the large-page base.
        let small_key = vaddr >> SMALL_SHIFT;
        if let Some(e) = self.table.get(&small_key) {
            return Some((small_key << SMALL_SHIFT, *e));
        }
        let large_base = (vaddr >> LARGE_SHIFT) << LARGE_SHIFT;
        let key = large_base >> SMALL_SHIFT;
        match self.table.get(&key) {
            Some(e) if e.size == PageSize::Large => Some((large_base, *e)),
            _ => None,
        }
    }

    /// Translates a logical address, updating the TLB and counters.
    ///
    /// # Errors
    ///
    /// [`MemError::PageFault`] if no mapping covers `vaddr` — the hardware
    /// protection check of §3.2/§4.1.
    pub fn translate(&mut self, vaddr: VAddr) -> Result<Translation, MemError> {
        let va = vaddr.as_u64();
        // 1. TLB probes (large then small; disjoint address bits, no alias).
        let large_vpn = va >> LARGE_SHIFT;
        let lidx = (large_vpn as usize) % LARGE_TLB_ENTRIES;
        if let Some(line) = self.large_tlb[lidx] {
            if line.vpn == large_vpn {
                self.stats.hits += 1;
                let off = va & (PageSize::Large.bytes() - 1);
                return Ok(Translation {
                    paddr: PAddr::new(line.pframe + off),
                    tlb_hit: true,
                    run: PageSize::Large.bytes() - off,
                });
            }
        }
        let small_vpn = va >> SMALL_SHIFT;
        let sidx = (small_vpn as usize) % SMALL_TLB_ENTRIES;
        if let Some(line) = self.small_tlb[sidx] {
            if line.vpn == small_vpn {
                self.stats.hits += 1;
                let off = va & (PageSize::Small.bytes() - 1);
                return Ok(Translation {
                    paddr: PAddr::new(line.pframe + off),
                    tlb_hit: true,
                    run: PageSize::Small.bytes() - off,
                });
            }
        }
        // 2. Page-table walk.
        let Some((page_base, entry)) = self.lookup_entry(va) else {
            self.stats.faults += 1;
            return Err(MemError::PageFault { addr: vaddr });
        };
        self.stats.misses += 1;
        let off = va - page_base;
        match entry.size {
            PageSize::Small => {
                self.small_tlb[sidx] = Some(TlbLine {
                    vpn: small_vpn,
                    pframe: entry.pframe,
                });
            }
            PageSize::Large => {
                self.large_tlb[lidx] = Some(TlbLine {
                    vpn: large_vpn,
                    pframe: entry.pframe,
                });
            }
        }
        Ok(Translation {
            paddr: PAddr::new(entry.pframe + off),
            tlb_hit: false,
            run: entry.size.bytes() - off,
        })
    }

    /// Translates without touching TLB state or counters (used by
    /// diagnostics and assertions).
    ///
    /// # Errors
    ///
    /// [`MemError::PageFault`] if no mapping covers `vaddr`.
    pub fn translate_peek(&self, vaddr: VAddr) -> Result<PAddr, MemError> {
        let va = vaddr.as_u64();
        let (page_base, entry) = self
            .lookup_entry(va)
            .ok_or(MemError::PageFault { addr: vaddr })?;
        Ok(PAddr::new(entry.pframe + (va - page_base)))
    }

    /// Flushes the TLB (context switch on a real machine).
    pub fn flush_tlb(&mut self) {
        self.small_tlb.fill(None);
        self.large_tlb.fill(None);
    }

    /// `FRAME_SIZE`-granularity check that an entire `[vaddr, vaddr+len)`
    /// range is mapped — used to validate DMA descriptors up front.
    ///
    /// # Errors
    ///
    /// [`MemError::PageFault`] at the first unmapped page.
    pub fn check_range(&self, vaddr: VAddr, len: u64) -> Result<(), MemError> {
        if len == 0 {
            return Ok(());
        }
        let mut va = vaddr.as_u64();
        let end = va
            .checked_add(len)
            .ok_or(MemError::PageFault { addr: vaddr })?;
        while va < end {
            let (page_base, entry) = self.lookup_entry(va).ok_or(MemError::PageFault {
                addr: VAddr::new(va),
            })?;
            va = page_base + entry.size.bytes();
        }
        Ok(())
    }
}

// Keep FRAME_SIZE consistent with the small page: DMA and allocator logic
// rely on it.
const _: () = assert!(FRAME_SIZE == 1 << SMALL_SHIFT);

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn alloc_translate_round_trip() {
        let mut mmu = Mmu::new(1 << 22);
        let a = mmu.map_anywhere(100).unwrap();
        let b = mmu.map_anywhere(100).unwrap();
        assert_ne!(a, b);
        let ta = mmu.translate(a).unwrap();
        let tb = mmu.translate(b).unwrap();
        assert_ne!(ta.paddr, tb.paddr);
        // First touch misses, second hits.
        assert!(!ta.tlb_hit);
        assert!(mmu.translate(a).unwrap().tlb_hit);
        let s = mmu.stats();
        assert_eq!(s.faults, 0);
        assert!(s.misses >= 2);
    }

    #[test]
    fn null_address_faults() {
        let mut mmu = Mmu::new(1 << 22);
        mmu.map_anywhere(4096).unwrap();
        assert!(matches!(
            mmu.translate(VAddr::NULL),
            Err(MemError::PageFault { .. })
        ));
        assert_eq!(mmu.stats().faults, 1);
    }

    #[test]
    fn large_regions_use_large_pages() {
        let mut mmu = Mmu::new(1 << 24);
        let a = mmu.map_anywhere(512 * 1024).unwrap(); // 2 large pages
        let t = mmu.translate(a).unwrap();
        assert_eq!(t.run, PageSize::Large.bytes());
        // Address in the middle of the second large page.
        let mid = a + (PageSize::Large.bytes() + 12345);
        let tm = mmu.translate(mid).unwrap();
        assert_eq!(
            tm.paddr.as_u64() - t.paddr.as_u64(),
            PageSize::Large.bytes() + 12345
        );
    }

    #[test]
    fn contiguous_virtual_is_contiguous_physical_within_region() {
        let mut mmu = Mmu::new(1 << 22);
        let a = mmu.map_anywhere(3 * 4096).unwrap();
        let p0 = mmu.translate(a).unwrap().paddr.as_u64();
        let p1 = mmu.translate(a + 4096).unwrap().paddr.as_u64();
        let p2 = mmu.translate(a + 8192).unwrap().paddr.as_u64();
        assert_eq!(p1, p0 + 4096);
        assert_eq!(p2, p0 + 8192);
    }

    #[test]
    fn out_of_frames() {
        let mut mmu = Mmu::new(8 * 4096);
        assert!(mmu.map_anywhere(4 * 4096).is_ok());
        assert!(matches!(
            mmu.map_anywhere(16 * 4096),
            Err(MemError::OutOfFrames { .. })
        ));
    }

    #[test]
    fn direct_mapped_conflicts_evict() {
        let mut mmu = Mmu::new(16 << 20);
        // Two small pages whose VPNs collide mod 256: allocate 257 pages and
        // touch page 0 and page 256 alternately.
        let a = mmu.map_anywhere(257 * 4096).unwrap();
        // map_anywhere of >=256KB uses large pages, so carve small ones:
        // 257*4096 > 256KB -> it used large pages. Use smaller allocations.
        let _ = a;
        let mut pages = Vec::new();
        let mut mmu = Mmu::new(16 << 20);
        for _ in 0..300 {
            pages.push(mmu.map_anywhere(4096).unwrap());
        }
        let p0 = pages[0];
        // Find a page with the same small-TLB index.
        let idx0 = (p0.as_u64() >> 12) as usize % 256;
        let conflicting = pages[1..]
            .iter()
            .copied()
            .find(|p| ((p.as_u64() >> 12) as usize % 256) == idx0)
            .expect("some page must collide");
        mmu.translate(p0).unwrap();
        assert!(mmu.translate(p0).unwrap().tlb_hit);
        mmu.translate(conflicting).unwrap(); // evicts p0's line
        assert!(!mmu.translate(p0).unwrap().tlb_hit);
    }

    #[test]
    fn flush_clears_tlb() {
        let mut mmu = Mmu::new(1 << 22);
        let a = mmu.map_anywhere(64).unwrap();
        mmu.translate(a).unwrap();
        assert!(mmu.translate(a).unwrap().tlb_hit);
        mmu.flush_tlb();
        assert!(!mmu.translate(a).unwrap().tlb_hit);
    }

    #[test]
    fn check_range_spans_pages() {
        let mut mmu = Mmu::new(1 << 22);
        let a = mmu.map_anywhere(2 * 4096).unwrap();
        assert!(mmu.check_range(a, 2 * 4096).is_ok());
        assert!(mmu.check_range(a, 0).is_ok());
        assert!(matches!(
            mmu.check_range(a, 2 * 4096 + 1),
            Err(MemError::PageFault { .. })
        ));
        assert!(mmu.check_range(VAddr::new(u64::MAX - 2), 8).is_err());
    }

    #[test]
    fn translate_peek_matches_translate() {
        let mut mmu = Mmu::new(1 << 22);
        let a = mmu.map_anywhere(4096).unwrap();
        let hits_before = mmu.stats().hits + mmu.stats().misses;
        let p = mmu.translate_peek(a + 17).unwrap();
        assert_eq!(mmu.stats().hits + mmu.stats().misses, hits_before);
        assert_eq!(mmu.translate(a + 17).unwrap().paddr, p);
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        /// Translation is a bijection on allocated ranges: distinct logical
        /// bytes map to distinct physical bytes.
        #[test]
        fn translation_is_injective(sizes in proptest::collection::vec(1u64..40_000, 1..12)) {
            let mut mmu = Mmu::new(64 << 20);
            let mut seen = std::collections::HashMap::new();
            for len in sizes {
                let base = mmu.map_anywhere(len).unwrap();
                // probe a few offsets in the region
                for off in [0, len / 2, len - 1] {
                    let v = base + off;
                    let p = mmu.translate(v).unwrap().paddr;
                    if let Some(prev) = seen.insert(p, v) {
                        prop_assert_eq!(prev, v, "physical alias detected");
                    }
                }
            }
        }

        /// The TLB never changes *what* an address translates to, only how
        /// fast: peek (no TLB) and translate agree everywhere.
        #[test]
        fn tlb_is_transparent(offsets in proptest::collection::vec(0u64..100_000, 1..50)) {
            let mut mmu = Mmu::new(16 << 20);
            let base = mmu.map_anywhere(100_000).unwrap();
            for off in offsets {
                let v = base + off;
                let peek = mmu.translate_peek(v).unwrap();
                let full = mmu.translate(v).unwrap().paddr;
                prop_assert_eq!(peek, full);
            }
        }
    }
}

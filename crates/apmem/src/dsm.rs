//! The distributed-shared-memory address map.
//!
//! Paper §4.2: *"The SuperSPARC supports 64 gigabytes of physical address
//! space (36 bit addresses). Each cell uses half of this address space for
//! local memory space and the other half for distributed shared memory
//! space. 32 gigabytes of shared memory space is divided into blocks equally
//! corresponding to each cell. … The MSC+ generates commands to translate
//! the upper 10 bits of physical addresses accessed by the processor to
//! destination cell IDs and the other bits to local addresses at the
//! destination cell."*

use aputil::{CellId, PAddr};

/// Total physical address-space bits.
pub const PHYS_BITS: u32 = 36;
/// Base of the shared half of the address space (bit 35 set).
pub const SHARED_BASE: u64 = 1 << (PHYS_BITS - 1);

/// The machine-wide shared-space map: splits a 36-bit physical address into
/// local vs. shared, and shared addresses into `(cell, local offset)`.
///
/// # Examples
///
/// ```
/// use apmem::DsmMap;
/// use aputil::{CellId, PAddr};
///
/// let map = DsmMap::new(64, 16 << 20); // 64 cells, 16 MB DRAM each
/// let addr = map.shared_addr(CellId::new(3), 0x100).unwrap();
/// let (cell, local) = map.resolve(addr).unwrap();
/// assert_eq!(cell, CellId::new(3));
/// // Shared window aliases the top half of the cell's DRAM.
/// assert_eq!(local.as_u64(), (16 << 20) / 2 + 0x100);
/// ```
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct DsmMap {
    ncells: u32,
    block_size: u64,
    dram_size: u64,
    window: u64, // usable bytes per cell block = min(block, dram/2)
}

impl DsmMap {
    /// Creates the map for a machine of `ncells` cells with `dram_size`
    /// bytes of DRAM each.
    ///
    /// The shared half is carved into equal per-cell blocks (the paper
    /// rounds the cell count up to the next power of two for the upper-bits
    /// decode); each block aliases the *top half* of that cell's DRAM, so
    /// the usable window per cell is `min(block_size, dram_size / 2)`.
    ///
    /// # Panics
    ///
    /// Panics if `ncells` is 0 or exceeds 65536. The real machine tops
    /// out at 1024 cells (Table 1); the emulator decodes up to 65536 so
    /// beyond-hardware scaling studies still get a well-formed map.
    pub fn new(ncells: u32, dram_size: u64) -> Self {
        assert!(
            (1..=65536).contains(&ncells),
            "AP1000+ scales 4-1024 cells (the emulator decodes up to 65536)"
        );
        let decode_cells = ncells.next_power_of_two().max(4) as u64;
        let block_size = SHARED_BASE / decode_cells;
        DsmMap {
            ncells,
            block_size,
            dram_size,
            window: block_size.min(dram_size / 2),
        }
    }

    /// Size of each cell's shared block in the 36-bit decode.
    pub fn block_size(&self) -> u64 {
        self.block_size
    }

    /// Usable bytes of each cell's shared window (limited by DRAM).
    pub fn window(&self) -> u64 {
        self.window
    }

    /// `true` if `addr` falls in the shared half of the address space.
    pub fn is_shared(&self, addr: PAddr) -> bool {
        addr.as_u64() >= SHARED_BASE
    }

    /// Builds the global shared-space address for byte `offset` of `cell`'s
    /// window. Returns `None` if `offset` exceeds the window or the cell is
    /// out of range.
    pub fn shared_addr(&self, cell: CellId, offset: u64) -> Option<PAddr> {
        if cell.index() >= self.ncells as usize || offset >= self.window {
            return None;
        }
        Some(PAddr::new(
            SHARED_BASE + cell.index() as u64 * self.block_size + offset,
        ))
    }

    /// Resolves a shared-space address to `(owning cell, local physical
    /// address)`. The local address lands in the top half of the owner's
    /// DRAM — "half of the local memory is mapped for shared space" (§4.2).
    ///
    /// Returns `None` for local-half addresses, nonexistent cells, or
    /// offsets beyond the usable window.
    pub fn resolve(&self, addr: PAddr) -> Option<(CellId, PAddr)> {
        let a = addr.as_u64();
        if !(SHARED_BASE..1 << PHYS_BITS).contains(&a) {
            return None;
        }
        let rel = a - SHARED_BASE;
        let cell = rel / self.block_size;
        let offset = rel % self.block_size;
        if cell >= self.ncells as u64 || offset >= self.window {
            return None;
        }
        Some((
            CellId::new(cell as u32),
            PAddr::new(self.dram_size / 2 + offset),
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_example_1024_cells_64mb() {
        // §4.2: 1024 cells, 64 MB local -> 32 MB blocks, half of local
        // memory mapped for shared space.
        let map = DsmMap::new(1024, 64 << 20);
        assert_eq!(map.block_size(), 32 << 20);
        assert_eq!(map.window(), 32 << 20);
        let (cell, local) = map
            .resolve(map.shared_addr(CellId::new(1023), 5).unwrap())
            .unwrap();
        assert_eq!(cell, CellId::new(1023));
        assert_eq!(local.as_u64(), (64 << 20) / 2 + 5);
    }

    #[test]
    fn local_half_is_not_shared() {
        let map = DsmMap::new(16, 16 << 20);
        assert!(!map.is_shared(PAddr::new(0x1000)));
        assert_eq!(map.resolve(PAddr::new(0x1000)), None);
        assert!(map.is_shared(PAddr::new(SHARED_BASE)));
    }

    #[test]
    fn round_trip_all_cells() {
        let map = DsmMap::new(13, 1 << 20); // non-power-of-two cell count
        for c in 0..13u32 {
            let addr = map.shared_addr(CellId::new(c), 1234).unwrap();
            let (cell, local) = map.resolve(addr).unwrap();
            assert_eq!(cell, CellId::new(c));
            assert_eq!(local.as_u64(), (1 << 20) / 2 + 1234);
        }
        // Cell beyond ncells but within the power-of-two decode: unmapped.
        assert_eq!(map.shared_addr(CellId::new(13), 0), None);
        let hole = PAddr::new(SHARED_BASE + 15 * map.block_size());
        assert_eq!(map.resolve(hole), None);
    }

    #[test]
    fn window_limited_by_dram() {
        let map = DsmMap::new(4, 1 << 20); // tiny DRAM: window = 512 KB
        assert_eq!(map.window(), (1 << 20) / 2);
        assert!(map.shared_addr(CellId::new(0), map.window()).is_none());
        assert!(map.shared_addr(CellId::new(0), map.window() - 1).is_some());
    }

    #[test]
    #[should_panic(expected = "1024")]
    fn too_many_cells_panics() {
        let _ = DsmMap::new(65537, 1 << 20);
    }

    #[test]
    fn beyond_hardware_scales_decode() {
        // 4096 cells: the decode carves the shared half into 4096 blocks
        // and addressing still round-trips at the far end.
        let map = DsmMap::new(4096, 16 << 20);
        let last = CellId::new(4095);
        let addr = map.shared_addr(last, 8).unwrap();
        let (cell, _) = map.resolve(addr).unwrap();
        assert_eq!(cell, last);
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        /// shared_addr and resolve are inverses wherever both are defined.
        #[test]
        fn addressing_round_trips(
            ncells in 1u32..=1024,
            cell in 0u32..1024,
            offset in 0u64..(1 << 25),
        ) {
            let map = DsmMap::new(ncells, 64 << 20);
            if let Some(addr) = map.shared_addr(CellId::new(cell), offset) {
                prop_assert!(cell < ncells);
                let (c, local) = map.resolve(addr).expect("must resolve");
                prop_assert_eq!(c, CellId::new(cell));
                prop_assert_eq!(local.as_u64(), (64u64 << 20) / 2 + offset);
            } else {
                prop_assert!(cell >= ncells || offset >= map.window());
            }
        }
    }
}

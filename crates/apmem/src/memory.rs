//! Sparse physical memory (the cell's DRAM).

use aputil::bytes::Pod;
use aputil::{PAddr, VAddr};
use core::fmt;
use std::collections::HashMap;
use std::error::Error;

/// Allocation granule of the sparse backing store (matches the small MMU
/// page so frame allocation and memory allocation line up).
pub const FRAME_SIZE: u64 = 4096;

/// Errors raised by memory and MMU operations.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
#[non_exhaustive]
pub enum MemError {
    /// A physical access fell outside the installed DRAM.
    OutOfBounds {
        /// Start of the offending access.
        addr: PAddr,
        /// Access length in bytes.
        len: u64,
        /// Installed DRAM size in bytes.
        size: u64,
    },
    /// A logical address had no page-table mapping (the paper's protection
    /// mechanism: user DMA with an illegal address raises a page fault).
    PageFault {
        /// The unmapped logical address.
        addr: VAddr,
    },
    /// Physical frame allocator exhausted the installed DRAM.
    OutOfFrames {
        /// Bytes requested when the allocator failed.
        requested: u64,
    },
}

impl fmt::Display for MemError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MemError::OutOfBounds { addr, len, size } => {
                write!(
                    f,
                    "physical access at {addr} len {len} exceeds DRAM size {size}"
                )
            }
            MemError::PageFault { addr } => write!(f, "page fault at {addr}"),
            MemError::OutOfFrames { requested } => {
                write!(f, "out of physical frames allocating {requested} bytes")
            }
        }
    }
}

impl Error for MemError {}

/// One cell's DRAM: byte-addressable, zero-initialized, sparsely backed.
///
/// Frames are materialized on first write; reads of untouched memory return
/// zeros, like freshly installed SIMMs. All accesses are bounds-checked
/// against the configured DRAM size (16 or 64 MB on the real machine, any
/// size here).
///
/// # Examples
///
/// ```
/// use apmem::Memory;
/// use aputil::PAddr;
///
/// let mut m = Memory::new(1 << 20);
/// m.write(PAddr::new(0x1000), &[1, 2, 3]).unwrap();
/// let mut buf = [0u8; 4];
/// m.read(PAddr::new(0x0fff), &mut buf).unwrap();
/// assert_eq!(buf, [0, 1, 2, 3]);
/// ```
#[derive(Clone, Debug)]
pub struct Memory {
    size: u64,
    frames: HashMap<u64, Box<[u8]>>,
}

impl Memory {
    /// Creates a DRAM of `size` bytes (rounded up to a whole frame).
    pub fn new(size: u64) -> Self {
        let size = size.div_ceil(FRAME_SIZE) * FRAME_SIZE;
        Memory {
            size,
            frames: HashMap::new(),
        }
    }

    /// Installed DRAM size in bytes.
    pub fn size(&self) -> u64 {
        self.size
    }

    /// Number of frames actually materialized (host-memory diagnostic).
    pub fn resident_frames(&self) -> usize {
        self.frames.len()
    }

    fn check(&self, addr: PAddr, len: u64) -> Result<(), MemError> {
        let end = addr
            .as_u64()
            .checked_add(len)
            .ok_or(MemError::OutOfBounds {
                addr,
                len,
                size: self.size,
            })?;
        if end > self.size {
            return Err(MemError::OutOfBounds {
                addr,
                len,
                size: self.size,
            });
        }
        Ok(())
    }

    /// Reads `buf.len()` bytes starting at `addr`.
    ///
    /// # Errors
    ///
    /// [`MemError::OutOfBounds`] if the access crosses the end of DRAM.
    pub fn read(&self, addr: PAddr, buf: &mut [u8]) -> Result<(), MemError> {
        self.check(addr, buf.len() as u64)?;
        let mut pos = addr.as_u64();
        let mut off = 0usize;
        while off < buf.len() {
            let frame = pos / FRAME_SIZE;
            let in_frame = (pos % FRAME_SIZE) as usize;
            let n = (FRAME_SIZE as usize - in_frame).min(buf.len() - off);
            match self.frames.get(&frame) {
                Some(data) => buf[off..off + n].copy_from_slice(&data[in_frame..in_frame + n]),
                None => buf[off..off + n].fill(0),
            }
            pos += n as u64;
            off += n;
        }
        Ok(())
    }

    /// Writes `data` starting at `addr`.
    ///
    /// # Errors
    ///
    /// [`MemError::OutOfBounds`] if the access crosses the end of DRAM.
    pub fn write(&mut self, addr: PAddr, data: &[u8]) -> Result<(), MemError> {
        self.check(addr, data.len() as u64)?;
        let mut pos = addr.as_u64();
        let mut off = 0usize;
        while off < data.len() {
            let frame = pos / FRAME_SIZE;
            let in_frame = (pos % FRAME_SIZE) as usize;
            let n = (FRAME_SIZE as usize - in_frame).min(data.len() - off);
            let frame_data = self
                .frames
                .entry(frame)
                .or_insert_with(|| vec![0u8; FRAME_SIZE as usize].into_boxed_slice());
            frame_data[in_frame..in_frame + n].copy_from_slice(&data[off..off + n]);
            pos += n as u64;
            off += n;
        }
        Ok(())
    }

    /// Reads one typed scalar.
    ///
    /// # Errors
    ///
    /// [`MemError::OutOfBounds`] if the access crosses the end of DRAM.
    pub fn read_pod<T: Pod>(&self, addr: PAddr) -> Result<T, MemError> {
        let mut buf = [0u8; 8];
        let slot = &mut buf[..T::SIZE];
        self.read(addr, slot)?;
        Ok(T::read_le(slot))
    }

    /// Writes one typed scalar.
    ///
    /// # Errors
    ///
    /// [`MemError::OutOfBounds`] if the access crosses the end of DRAM.
    pub fn write_pod<T: Pod>(&mut self, addr: PAddr, value: T) -> Result<(), MemError> {
        let mut buf = [0u8; 8];
        let slot = &mut buf[..T::SIZE];
        value.write_le(slot);
        self.write(addr, slot)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fresh_memory_reads_zero() {
        let m = Memory::new(8192);
        let mut buf = [0xffu8; 16];
        m.read(PAddr::new(100), &mut buf).unwrap();
        assert_eq!(buf, [0u8; 16]);
        assert_eq!(m.resident_frames(), 0);
    }

    #[test]
    fn write_read_round_trip_across_frames() {
        let mut m = Memory::new(3 * FRAME_SIZE);
        let data: Vec<u8> = (0..9000u32).map(|i| (i % 251) as u8).collect();
        m.write(PAddr::new(100), &data).unwrap();
        let mut back = vec![0u8; data.len()];
        m.read(PAddr::new(100), &mut back).unwrap();
        assert_eq!(back, data);
        assert_eq!(m.resident_frames(), 3);
    }

    #[test]
    fn bounds_are_enforced() {
        let mut m = Memory::new(FRAME_SIZE);
        assert!(m.write(PAddr::new(FRAME_SIZE - 1), &[1, 2]).is_err());
        let mut b = [0u8; 2];
        assert!(m.read(PAddr::new(FRAME_SIZE - 1), &mut b).is_err());
        // Exactly at the edge is fine.
        assert!(m.write(PAddr::new(FRAME_SIZE - 2), &[1, 2]).is_ok());
    }

    #[test]
    fn size_rounds_up_to_frame() {
        let m = Memory::new(1);
        assert_eq!(m.size(), FRAME_SIZE);
    }

    #[test]
    fn pod_round_trip() {
        let mut m = Memory::new(FRAME_SIZE);
        m.write_pod(PAddr::new(16), 3.5f64).unwrap();
        assert_eq!(m.read_pod::<f64>(PAddr::new(16)).unwrap(), 3.5);
        m.write_pod(PAddr::new(8), u32::MAX).unwrap();
        assert_eq!(m.read_pod::<u32>(PAddr::new(8)).unwrap(), u32::MAX);
    }

    #[test]
    fn overflowing_length_is_out_of_bounds() {
        let m = Memory::new(FRAME_SIZE);
        let mut huge = vec![0u8; 16];
        let err = m.read(PAddr::new(u64::MAX - 4), &mut huge).unwrap_err();
        assert!(matches!(err, MemError::OutOfBounds { .. }));
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        /// Sparse memory behaves like one big zero-initialized array.
        #[test]
        fn behaves_like_flat_array(
            writes in proptest::collection::vec(
                (0u64..16384, proptest::collection::vec(any::<u8>(), 1..200)),
                1..40
            )
        ) {
            let size = 32 * 1024;
            let mut sparse = Memory::new(size);
            let mut flat = vec![0u8; size as usize];
            for (addr, data) in &writes {
                if addr + data.len() as u64 <= size {
                    sparse.write(PAddr::new(*addr), data).unwrap();
                    flat[*addr as usize..*addr as usize + data.len()].copy_from_slice(data);
                }
            }
            let mut back = vec![0u8; size as usize];
            sparse.read(PAddr::new(0), &mut back).unwrap();
            prop_assert_eq!(back, flat);
        }
    }
}

//! Memory controller (MC) model for the AP1000+ reproduction.
//!
//! The MC sits between the SuperSPARC, the DRAM, and the MSC+ message
//! controller (paper §4, Figure 5). This crate models every MC function the
//! paper describes:
//!
//! * [`memory::Memory`] — the cell's DRAM, sparsely allocated so a
//!   1024-cell machine with 64 MB cells does not need 64 GB of host RAM.
//! * [`mmu::Mmu`] — logical→physical translation with the paper's
//!   direct-mapped TLB: **256 entries for 4 KB pages and 64 entries for
//!   256 KB pages** (§4.1 "MMU and protection"), plus page-fault protection
//!   for illegal user addresses.
//! * [`flags::FlagUnit`] — the MC's fetch-and-increment unit that
//!   updates PUT/GET completion flags when DMA finishes (§4.1 "Flag update
//!   combined with data transfer").
//! * [`commreg::CommRegs`] — the **128 four-byte communication
//!   registers with present bits** used for barrier synchronization and
//!   scalar global reduction (§4.4).
//! * [`dsm::DsmMap`] — the 36-bit physical address-space split: half
//!   local, half distributed shared memory carved into per-cell blocks
//!   (§4.2).

pub mod commreg;
pub mod dsm;
pub mod flags;
pub mod memory;
pub mod mmu;

pub use commreg::CommRegs;
pub use dsm::DsmMap;
pub use flags::FlagUnit;
pub use memory::{MemError, Memory};
pub use mmu::{Mmu, PageSize, TlbStats, Translation};

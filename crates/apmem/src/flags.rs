//! The MC's fetch-and-increment flag unit.
//!
//! Paper §4.1, "Flag update combined with data transfer": *"the MSC+
//! requests that the MC increment a flag, whose address is shown in the
//! queue when the send DMA operation is completed. The MC converts the flag
//! address from logical to physical using its own MMU and increments the
//! flag value. The MC has an incrementer, which can fetch and increment."*
//!
//! Flags are ordinary `u32` variables in user memory addressed logically;
//! a flag address of 0 means "no flag" and the update is skipped.

use crate::memory::{MemError, Memory};
use crate::mmu::Mmu;
use aputil::VAddr;

/// The fetch-and-increment unit.
///
/// Stateless apart from a counter of performed updates; owns neither the
/// MMU nor the memory, mirroring the hardware where the incrementer is a
/// datapath inside the MC.
#[derive(Clone, Copy, Debug, Default)]
pub struct FlagUnit {
    updates: u64,
    skipped: u64,
}

impl FlagUnit {
    /// Creates a flag unit.
    pub fn new() -> Self {
        FlagUnit::default()
    }

    /// Number of flag increments performed.
    pub fn updates(&self) -> u64 {
        self.updates
    }

    /// Number of updates skipped because the address was 0.
    pub fn skipped(&self) -> u64 {
        self.skipped
    }

    /// Fetch-and-increment the flag at logical `flag` using the given MMU
    /// and memory. Returns the *previous* value, or `None` when `flag` is
    /// the null address (update skipped, per §4.1: "if flag addresses are
    /// specified as 0, MSC+ does not update the flag").
    ///
    /// # Errors
    ///
    /// Propagates [`MemError::PageFault`] from translation and
    /// [`MemError::OutOfBounds`] from the physical access.
    pub fn fetch_increment(
        &mut self,
        mmu: &mut Mmu,
        mem: &mut Memory,
        flag: VAddr,
    ) -> Result<Option<u32>, MemError> {
        if flag.is_null() {
            self.skipped += 1;
            return Ok(None);
        }
        let t = mmu.translate(flag)?;
        let old: u32 = mem.read_pod(t.paddr)?;
        mem.write_pod(t.paddr, old.wrapping_add(1))?;
        self.updates += 1;
        Ok(Some(old))
    }

    /// Reads a flag's current value without modifying it (the program's
    /// flag-check path).
    ///
    /// # Errors
    ///
    /// Propagates translation and access errors; the null address is an
    /// error here because checking "no flag" is a program bug.
    pub fn read(&self, mmu: &Mmu, mem: &Memory, flag: VAddr) -> Result<u32, MemError> {
        if flag.is_null() {
            return Err(MemError::PageFault { addr: flag });
        }
        let p = mmu.translate_peek(flag)?;
        mem.read_pod(p)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::memory::Memory;

    fn setup() -> (Mmu, Memory, VAddr) {
        let mut mmu = Mmu::new(1 << 20);
        let mem = Memory::new(1 << 20);
        let flag = mmu.map_anywhere(4).unwrap();
        (mmu, mem, flag)
    }

    #[test]
    fn increments_from_zero() {
        let (mut mmu, mut mem, flag) = setup();
        let mut fu = FlagUnit::new();
        assert_eq!(
            fu.fetch_increment(&mut mmu, &mut mem, flag).unwrap(),
            Some(0)
        );
        assert_eq!(
            fu.fetch_increment(&mut mmu, &mut mem, flag).unwrap(),
            Some(1)
        );
        assert_eq!(fu.read(&mmu, &mem, flag).unwrap(), 2);
        assert_eq!(fu.updates(), 2);
    }

    #[test]
    fn null_flag_is_skipped() {
        let (mut mmu, mut mem, _) = setup();
        let mut fu = FlagUnit::new();
        assert_eq!(
            fu.fetch_increment(&mut mmu, &mut mem, VAddr::NULL).unwrap(),
            None
        );
        assert_eq!(fu.updates(), 0);
        assert_eq!(fu.skipped(), 1);
        assert!(fu.read(&mmu, &mem, VAddr::NULL).is_err());
    }

    #[test]
    fn unmapped_flag_faults() {
        let (mut mmu, mut mem, _) = setup();
        let mut fu = FlagUnit::new();
        let bogus = VAddr::new(0xdead_0000);
        assert!(matches!(
            fu.fetch_increment(&mut mmu, &mut mem, bogus),
            Err(MemError::PageFault { .. })
        ));
    }

    #[test]
    fn wraps_at_u32_max() {
        let (mut mmu, mut mem, flag) = setup();
        let p = mmu.translate_peek(flag).unwrap();
        mem.write_pod(p, u32::MAX).unwrap();
        let mut fu = FlagUnit::new();
        assert_eq!(
            fu.fetch_increment(&mut mmu, &mut mem, flag).unwrap(),
            Some(u32::MAX)
        );
        assert_eq!(fu.read(&mmu, &mem, flag).unwrap(), 0);
    }
}

//! The S-net hardware barrier network.
//!
//! Paper §4/§4.5: *"a synchronization network, or S-net, for barrier
//! synchronization"*; *"The AP1000+ uses the synchronization network
//! (S-net) in hardware … for barrier synchronization. … Software
//! synchronization can be used for barrier synchronization for specific
//! groups of cells."* The hardware tree synchronizes **all** cells; group
//! barriers are built in software on communication registers (see
//! `apcore`).

use aputil::{ApError, ApResult, CellId, SimTime};

/// The machine-wide hardware barrier.
///
/// Cells call [`SNet::arrive`] as they reach the barrier; when the last
/// cell arrives the barrier *fires* and every cell is released at
/// `latest_arrival + latency`.
///
/// # Examples
///
/// ```
/// use apnet::SNet;
/// use aputil::{CellId, SimTime};
///
/// let mut s = SNet::new(2, SimTime::from_micros(1));
/// assert_eq!(s.arrive(CellId::new(0), SimTime::from_nanos(100)).unwrap(), None);
/// let release = s.arrive(CellId::new(1), SimTime::from_nanos(500)).unwrap().unwrap();
/// assert_eq!(release.as_nanos(), 1500);
/// ```
#[derive(Clone, Debug)]
pub struct SNet {
    latency: SimTime,
    waiting: Vec<bool>,
    arrived: u32,
    latest: SimTime,
    epochs: u64,
}

impl SNet {
    /// Creates an S-net for `ncells` cells with the given tree latency.
    ///
    /// # Panics
    ///
    /// Panics if `ncells` is zero.
    pub fn new(ncells: u32, latency: SimTime) -> Self {
        assert!(ncells > 0, "S-net needs at least one cell");
        SNet {
            latency,
            waiting: vec![false; ncells as usize],
            arrived: 0,
            latest: SimTime::ZERO,
            epochs: 0,
        }
    }

    /// Number of completed barrier epochs (wraps around at `u64::MAX`).
    pub fn epochs(&self) -> u64 {
        self.epochs
    }

    /// Number of cells currently waiting at the barrier.
    pub fn waiting_count(&self) -> u32 {
        self.arrived
    }

    /// Registers that `cell` reached the barrier at `now`. Returns
    /// `Some(release_time)` when this arrival completes the barrier (the
    /// caller releases *all* cells at that time), `None` otherwise.
    ///
    /// # Errors
    ///
    /// [`ApError::BarrierMisuse`] if `cell` is outside this S-net or
    /// arrives twice before the barrier fires — both indicate a kernel
    /// bug, and the barrier bookkeeping is left untouched so diagnostics
    /// can still read it.
    pub fn arrive(&mut self, cell: CellId, now: SimTime) -> ApResult<Option<SimTime>> {
        let idx = cell.index();
        if idx >= self.waiting.len() {
            return Err(ApError::BarrierMisuse {
                cell,
                detail: format!("cell outside this {}-cell S-net", self.waiting.len()),
            });
        }
        if self.waiting[idx] {
            return Err(ApError::BarrierMisuse {
                cell,
                detail: format!(
                    "entered the barrier twice in one epoch ({} of {} cells waiting)",
                    self.arrived,
                    self.waiting.len()
                ),
            });
        }
        self.waiting[idx] = true;
        self.arrived += 1;
        self.latest = self.latest.max(now);
        if self.arrived as usize == self.waiting.len() {
            let release = self.latest + self.latency;
            self.waiting.fill(false);
            self.arrived = 0;
            self.latest = SimTime::ZERO;
            self.epochs = self.epochs.wrapping_add(1);
            Ok(Some(release))
        } else {
            Ok(None)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ns(n: u64) -> SimTime {
        SimTime::from_nanos(n)
    }

    #[test]
    fn releases_at_latest_plus_latency() {
        let mut s = SNet::new(3, ns(10));
        assert_eq!(s.arrive(CellId::new(2), ns(300)).unwrap(), None);
        assert_eq!(s.arrive(CellId::new(0), ns(100)).unwrap(), None);
        assert_eq!(s.waiting_count(), 2);
        assert_eq!(s.arrive(CellId::new(1), ns(200)).unwrap(), Some(ns(310)));
        assert_eq!(s.epochs(), 1);
        assert_eq!(s.waiting_count(), 0);
    }

    #[test]
    fn epochs_are_independent() {
        let mut s = SNet::new(2, ns(5));
        s.arrive(CellId::new(0), ns(10)).unwrap();
        assert_eq!(s.arrive(CellId::new(1), ns(20)).unwrap(), Some(ns(25)));
        // Second epoch starts clean; earlier latest must not leak.
        s.arrive(CellId::new(1), ns(30)).unwrap();
        assert_eq!(s.arrive(CellId::new(0), ns(40)).unwrap(), Some(ns(45)));
        assert_eq!(s.epochs(), 2);
    }

    #[test]
    fn single_cell_barrier_fires_immediately() {
        let mut s = SNet::new(1, ns(7));
        assert_eq!(s.arrive(CellId::new(0), ns(1)).unwrap(), Some(ns(8)));
    }

    #[test]
    fn double_arrival_is_a_structured_error() {
        let mut s = SNet::new(2, ns(1));
        s.arrive(CellId::new(0), ns(1)).unwrap();
        let err = s.arrive(CellId::new(0), ns(2)).unwrap_err();
        match &err {
            ApError::BarrierMisuse { cell, detail } => {
                assert_eq!(*cell, CellId::new(0));
                assert!(detail.contains("twice"), "unexpected detail: {detail}");
            }
            other => panic!("expected BarrierMisuse, got {other:?}"),
        }
        // The bookkeeping survives the error: the barrier can still fire.
        assert_eq!(s.waiting_count(), 1);
        assert_eq!(s.arrive(CellId::new(1), ns(3)).unwrap(), Some(ns(4)));
        assert_eq!(s.epochs(), 1);
    }

    #[test]
    fn out_of_range_is_a_structured_error() {
        let mut s = SNet::new(2, ns(1));
        let err = s.arrive(CellId::new(3), ns(1)).unwrap_err();
        assert!(matches!(err, ApError::BarrierMisuse { .. }));
        assert!(err.to_string().contains("outside"));
        assert_eq!(s.waiting_count(), 0);
    }

    #[test]
    fn epoch_counter_rolls_over_without_disturbing_the_barrier() {
        let mut s = SNet::new(2, ns(1));
        s.epochs = u64::MAX;
        s.arrive(CellId::new(0), ns(5)).unwrap();
        assert_eq!(s.arrive(CellId::new(1), ns(5)).unwrap(), Some(ns(6)));
        assert_eq!(s.epochs(), 0, "epoch counter wraps");
        // The epoch after the rollover is fully functional.
        s.arrive(CellId::new(1), ns(7)).unwrap();
        assert_eq!(s.arrive(CellId::new(0), ns(9)).unwrap(), Some(ns(10)));
        assert_eq!(s.epochs(), 1);
        assert_eq!(s.waiting_count(), 0);
    }
}

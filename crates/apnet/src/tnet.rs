//! The T-net point-to-point timing model.
//!
//! A message injected at time `t` from `src` to `dst` arrives at
//!
//! ```text
//! arrival = t + network_prolog + network_delay · hops(src, dst)
//!             + network_msg_time · size
//! ```
//!
//! which is items (15)–(18) of the paper's Figure 7. On top of that the
//! model enforces two hardware properties:
//!
//! * **per-pair FIFO** — static routing means two messages between the same
//!   pair can never overtake each other;
//! * optional **port contention** — each cell has one injection channel and
//!   one ejection channel (25 MB/s each, Figure 5); with
//!   [`Contention::Ports`] a message occupies both for its serialization
//!   time, so bursts to one destination queue up.

use crate::torus::Torus;
use apfault::{FaultPlan, RouteVerdict};
use apobs::{Bucket, Hist, Recorder, TimelineEvent, Unit};
use apsim::Resource;
use aputil::{ApError, ApResult, CellId, SimTime};
use std::collections::HashMap;

/// Timing parameters of the T-net (Figure 6 names).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct TNetParams {
    /// Fixed per-message network startup (`network_prolog_time`).
    pub prolog: SimTime,
    /// Per-hop latency (`network_delay_time`).
    pub per_hop: SimTime,
    /// Per-byte serialization time (`network_msg_time`); 25 MB/s ⇒ 40 ns/B.
    pub per_byte: SimTime,
}

impl TNetParams {
    /// Minimum latency of any packet that crosses at least one torus link:
    /// one prolog plus one hop, with zero payload bytes. This is the
    /// conservative PDES lookahead bound — no event injected at time `t`
    /// on one side of a tile boundary can affect the other side before
    /// `t + min_crossing_latency()` (DESIGN.md §10).
    pub fn min_crossing_latency(&self) -> SimTime {
        self.prolog + self.per_hop
    }
}

impl Default for TNetParams {
    /// The AP1000 hardware numbers: 0.16 µs prolog, 0.16 µs per hop,
    /// 25 MB/s channels.
    fn default() -> Self {
        TNetParams {
            prolog: SimTime::from_micros_f64(0.16),
            per_hop: SimTime::from_micros_f64(0.16),
            per_byte: SimTime::from_nanos(40),
        }
    }
}

/// How much of the network's internal contention to model.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub enum Contention {
    /// Pure latency model — what the paper's MLSim uses ("MLSim simulates
    /// communication behavior … with a delay parameter").
    #[default]
    None,
    /// Injection/ejection channels serialize messages (Figure 5: four
    /// 25 MB/s channels per cell; we model one in + one out).
    Ports,
    /// Every directed torus link on the static dimension-order route is a
    /// serially-occupied 25 MB/s channel: messages crossing a shared link
    /// queue behind each other (wormhole head-of-line blocking).
    Links,
}

/// Outcome of a transfer attempted under a fault plan.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Delivery {
    /// The packet reached its destination.
    Delivered {
        /// Arrival time at the destination.
        at: SimTime,
        /// `true` if it travelled the Y-then-X detour around a known
        /// link outage.
        detoured: bool,
    },
    /// The packet was lost (undiscovered outage, or the detour was also
    /// down); the sender's ack timeout recovers it.
    Dropped,
}

/// Aggregate T-net statistics.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct TNetStats {
    /// Messages carried.
    pub messages: u64,
    /// Payload bytes carried.
    pub bytes: u64,
    /// Sum of hop counts (for mean-distance reporting).
    pub total_hops: u64,
}

/// Observability side-channel of the T-net: histograms are always
/// collected (they are two array increments per message); timeline events
/// are buffered only after [`TNet::enable_events`].
#[derive(Clone, Debug, Default)]
pub struct TNetObs {
    recorder: Recorder,
    /// Payload bytes per message.
    pub msg_size: Hist,
    /// End-to-end transit nanoseconds per message (prolog + hops +
    /// serialization, including contention stalls and FIFO holds).
    pub latency: Hist,
}

/// Per-directed-link busy accumulators for the sampled-metrics layer.
/// Kept behind an `Option` so metrics-off runs pay nothing (not even the
/// route computation on the `Contention::None`/`Ports` fast paths).
#[derive(Clone, Debug, Default)]
struct LinkStats {
    /// Cumulative link-transmission time summed over every link crossing
    /// (one message over `h` hops charges `h` transmission times).
    total_busy: SimTime,
    /// Busy time per directed link.
    per_link: HashMap<(CellId, CellId), SimTime>,
}

/// The T-net: topology + timing + ordering state.
#[derive(Clone, Debug)]
pub struct TNet {
    torus: Torus,
    params: TNetParams,
    contention: Contention,
    in_port: Vec<Resource>,
    out_port: Vec<Resource>,
    links: HashMap<(CellId, CellId), Resource>,
    last_arrival: HashMap<(CellId, CellId), SimTime>,
    stats: TNetStats,
    obs: TNetObs,
    link_stats: Option<LinkStats>,
}

impl TNet {
    /// Creates a T-net over `torus` with the given timing and contention
    /// model.
    pub fn new(torus: Torus, params: TNetParams, contention: Contention) -> Self {
        let n = torus.ncells() as usize;
        TNet {
            torus,
            params,
            contention,
            in_port: vec![Resource::new(); n],
            out_port: vec![Resource::new(); n],
            links: HashMap::new(),
            last_arrival: HashMap::new(),
            stats: TNetStats::default(),
            obs: TNetObs::default(),
            link_stats: None,
        }
    }

    /// The underlying topology.
    pub fn torus(&self) -> Torus {
        self.torus
    }

    /// The timing parameters (for lookahead derivation and reporting).
    pub fn params(&self) -> TNetParams {
        self.params
    }

    /// Per-byte serialization cost of a `size`-byte payload; an overflow
    /// of the sim-time range is a configuration error surfaced as
    /// [`ApError::InvalidArg`], never silently clamped.
    fn serialize_cost(&self, src: CellId, dst: CellId, size: u64) -> ApResult<SimTime> {
        self.params.per_byte.checked_mul(size).ok_or_else(|| {
            ApError::InvalidArg(format!(
                "T-net cost overflow: {size} B at {} per byte from {src} to {dst} \
                 exceeds the sim-time range",
                self.params.per_byte
            ))
        })
    }

    /// Statistics so far.
    pub fn stats(&self) -> TNetStats {
        self.stats
    }

    /// Observability state (message-size and latency histograms).
    pub fn obs(&self) -> &TNetObs {
        &self.obs
    }

    /// Starts buffering per-message timeline events (injection spans on the
    /// source's net track, hop instants along the route, a delivery instant
    /// at the destination).
    pub fn enable_events(&mut self) {
        self.obs.recorder = Recorder::enabled();
    }

    /// Like [`TNet::enable_events`], but into a bounded flight-recorder
    /// ring keeping only the last `cap` events per unit category.
    pub fn enable_events_ring(&mut self, cap: usize) {
        self.obs.recorder = Recorder::ring(cap);
    }

    /// Like [`TNet::enable_events`], but streaming each event straight to
    /// a shared sink (typically the same binary trace writer the kernel's
    /// recorder streams to), so nothing is buffered in memory.
    pub fn enable_events_sink(&mut self, sink: apobs::SharedSink) {
        self.obs.recorder = Recorder::streaming(sink);
    }

    /// Drains the buffered timeline events.
    pub fn take_events(&mut self) -> Vec<TimelineEvent> {
        self.obs.recorder.take_events()
    }

    /// Starts accumulating per-link busy time (the sampled-metrics tap;
    /// off by default because it walks the route of every message).
    pub fn enable_link_stats(&mut self) {
        self.link_stats = Some(LinkStats::default());
    }

    /// Cumulative link-busy time so far ([`SimTime::ZERO`] when
    /// [`TNet::enable_link_stats`] was never called).
    pub fn link_busy_total(&self) -> SimTime {
        self.link_stats
            .as_ref()
            .map_or(SimTime::ZERO, |ls| ls.total_busy)
    }

    /// Per-directed-link busy time, sorted by `(from, to)` for
    /// deterministic export. Empty when link stats are off.
    pub fn link_busy_per_link(&self) -> Vec<(CellId, CellId, SimTime)> {
        let Some(ls) = &self.link_stats else {
            return Vec::new();
        };
        let mut v: Vec<(CellId, CellId, SimTime)> =
            ls.per_link.iter().map(|(&(a, b), &t)| (a, b, t)).collect();
        v.sort_unstable_by_key(|&(a, b, _)| (a, b));
        v
    }

    /// Injects a `size`-byte message at time `now`; returns its arrival
    /// time at `dst`. Delivery between the same `(src, dst)` pair is
    /// guaranteed nondecreasing (FIFO), like the real statically-routed
    /// wormhole T-net.
    ///
    /// # Panics
    ///
    /// Panics if `src` or `dst` are outside the torus.
    pub fn transfer(&mut self, now: SimTime, src: CellId, dst: CellId, size: u64) -> SimTime {
        self.transfer_tagged(now, src, dst, size, 0)
    }

    /// Like [`TNet::transfer`], but tags the emitted timeline events with
    /// transfer-chain id `tid` so the network leg joins the issuing
    /// operation's causality chain (critical-path reconstruction).
    ///
    /// # Panics
    ///
    /// Panics if `src` or `dst` are outside the torus.
    pub fn transfer_tagged(
        &mut self,
        now: SimTime,
        src: CellId,
        dst: CellId,
        size: u64,
        tid: u64,
    ) -> SimTime {
        let hops = self.torus.hops(src, dst);
        let serialize = self
            .serialize_cost(src, dst, size)
            .unwrap_or_else(|e| panic!("{e}"));
        let mut depart = now;
        if let Contention::Links = self.contention {
            // Wormhole over the static route: the head advances one hop per
            // `per_hop`, each directed link holds the message for its
            // serialization time, and a busy link stalls the whole worm.
            let route = self.torus.route(src, dst);
            let mut head = now + self.params.prolog;
            for pair in route.windows(2) {
                let link = self.links.entry((pair[0], pair[1])).or_default();
                let (start, _) = link.reserve(head, serialize);
                head = start + self.params.per_hop;
            }
            let arrival = head + serialize;
            return self.finish(now, src, dst, hops, size, arrival, tid, None);
        }
        if let Contention::Ports = self.contention {
            // Hold the sender's injection channel for the serialization
            // time, then the receiver's ejection channel.
            let (_, inj_end) = self.out_port[src.index()].reserve(depart, serialize);
            depart = inj_end - serialize; // wormhole: head leaves when channel granted
            let head_at_dst = depart + self.params.prolog + self.params.per_hop * hops as u64;
            let (_, ej_end) = self.in_port[dst.index()].reserve(head_at_dst, serialize);
            let arrival = ej_end;
            return self.finish(now, src, dst, hops, size, arrival, tid, None);
        }
        let arrival = depart + self.params.prolog + self.params.per_hop * hops as u64 + serialize;
        self.finish(now, src, dst, hops, size, arrival, tid, None)
    }

    /// Like [`TNet::transfer_tagged`], but consulting a [`FaultPlan`]:
    /// link outages on the static route drop the first crossing and steer
    /// later packets onto the Y-then-X detour, and injected per-pair
    /// delays stretch the arrival. The fault-free entry points never call
    /// this, so their timing is untouched by the fault layer.
    ///
    /// # Errors
    ///
    /// Returns [`ApError::InvalidArg`] on an empty route (which would
    /// otherwise underflow into a huge hop count) or when the
    /// serialization cost overflows the sim-time range.
    ///
    /// # Panics
    ///
    /// Panics if `src` or `dst` are outside the torus.
    pub fn transfer_faulty(
        &mut self,
        now: SimTime,
        src: CellId,
        dst: CellId,
        size: u64,
        tid: u64,
        plan: &mut FaultPlan,
    ) -> ApResult<Delivery> {
        let primary = self.torus.route(src, dst);
        let (route, detoured) = match plan.route_verdict(&primary, now, false) {
            RouteVerdict::Deliver => (primary, false),
            RouteVerdict::Drop => {
                self.note_drop(src, now, size, tid);
                return Ok(Delivery::Dropped);
            }
            RouteVerdict::Detour => {
                let alt = self.torus.route_yx(src, dst);
                match plan.route_verdict(&alt, now, true) {
                    RouteVerdict::Deliver => {
                        plan.report.detours += 1;
                        (alt, true)
                    }
                    _ => {
                        // Same-row/column pairs have no distinct detour;
                        // the retry protocol waits the outage out.
                        self.note_drop(src, now, size, tid);
                        return Ok(Delivery::Dropped);
                    }
                }
            }
        };
        let hops = route.len().checked_sub(1).ok_or_else(|| {
            ApError::InvalidArg(format!(
                "T-net route from {src} to {dst} is empty — a zero-length route \
                 would underflow into a wrapped hop count"
            ))
        })? as u32;
        let serialize = self.serialize_cost(src, dst, size)?;
        let arrival = match self.contention {
            Contention::Links => {
                let mut head = now + self.params.prolog;
                for pair in route.windows(2) {
                    let link = self.links.entry((pair[0], pair[1])).or_default();
                    let (start, _) = link.reserve(head, serialize);
                    head = start + self.params.per_hop;
                }
                head + serialize
            }
            Contention::Ports => {
                let (_, inj_end) = self.out_port[src.index()].reserve(now, serialize);
                let depart = inj_end - serialize;
                let head_at_dst = depart + self.params.prolog + self.params.per_hop * hops as u64;
                let (_, ej_end) = self.in_port[dst.index()].reserve(head_at_dst, serialize);
                ej_end
            }
            Contention::None => {
                now + self.params.prolog + self.params.per_hop * hops as u64 + serialize
            }
        };
        let arrival = arrival + plan.delay(src, dst, now);
        if detoured && self.obs.recorder.is_enabled() {
            self.obs.recorder.instant_id(
                src.as_u32(),
                Unit::Net,
                "detour",
                now,
                Bucket::Hw,
                size,
                tid,
            );
        }
        let at = self.finish(now, src, dst, hops, size, arrival, tid, Some(&route));
        Ok(Delivery::Delivered { at, detoured })
    }

    /// Marks a packet lost in the network on the timeline.
    fn note_drop(&mut self, src: CellId, now: SimTime, size: u64, tid: u64) {
        if self.obs.recorder.is_enabled() {
            self.obs.recorder.instant_id(
                src.as_u32(),
                Unit::Net,
                "drop",
                now,
                Bucket::Hw,
                size,
                tid,
            );
        }
    }

    #[allow(clippy::too_many_arguments)]
    fn finish(
        &mut self,
        now: SimTime,
        src: CellId,
        dst: CellId,
        hops: u32,
        size: u64,
        arrival: SimTime,
        tid: u64,
        route: Option<&[CellId]>,
    ) -> SimTime {
        let slot = self.last_arrival.entry((src, dst)).or_insert(SimTime::ZERO);
        let arrival = arrival.max(*slot);
        *slot = arrival;
        self.stats.messages += 1;
        self.stats.bytes += size;
        self.stats.total_hops += hops as u64;
        self.obs.msg_size.record(size);
        self.obs
            .latency
            .record(arrival.saturating_sub(now).as_nanos());
        if self.link_stats.is_some() || self.obs.recorder.is_enabled() {
            // Resolve the actual route once for both consumers (the
            // detour route is passed in; otherwise it's the static one).
            let computed;
            let route: &[CellId] = match route {
                Some(r) => r,
                None => {
                    computed = self.torus.route(src, dst);
                    &computed
                }
            };
            if let Some(ls) = &mut self.link_stats {
                // Each directed link holds the message for one hop delay
                // plus its serialization time. `SimTime`'s `+`/`*` are
                // checked: an overflow panics with context instead of
                // clamping the busy accumulators.
                let tx = self.params.per_hop
                    + self
                        .params
                        .per_byte
                        .checked_mul(size)
                        .expect("T-net link-busy cost overflowed the sim-time range");
                let crossings = route
                    .len()
                    .checked_sub(1)
                    .expect("a route always includes its source cell")
                    as u64;
                ls.total_busy += tx * crossings;
                for pair in route.windows(2) {
                    let slot = ls
                        .per_link
                        .entry((pair[0], pair[1]))
                        .or_insert(SimTime::ZERO);
                    *slot += tx;
                }
            }
            if self.obs.recorder.is_enabled() {
                self.record_route_events(now, src, dst, size, arrival, tid, route);
            }
        }
        arrival
    }

    /// The per-message timeline events along `route` (extracted from
    /// [`TNet::finish`] so the route resolves once for events and link
    /// stats alike).
    #[allow(clippy::too_many_arguments)]
    fn record_route_events(
        &mut self,
        now: SimTime,
        src: CellId,
        dst: CellId,
        size: u64,
        arrival: SimTime,
        tid: u64,
        route: &[CellId],
    ) {
        self.obs.recorder.span_id(
            src.as_u32(),
            Unit::Net,
            "transfer",
            now,
            arrival.saturating_sub(now),
            Bucket::Hw,
            size,
            tid,
        );
        // Nominal head-advance times along the static route (or the
        // detour actually taken); contention stalls show up as the gap
        // to the delivery instant.
        let head = now + self.params.prolog;
        for (k, cell) in route.iter().enumerate().skip(1) {
            if *cell != dst {
                self.obs.recorder.instant_id(
                    cell.as_u32(),
                    Unit::Net,
                    "hop",
                    head + self.params.per_hop * k as u64,
                    Bucket::Hw,
                    size,
                    tid,
                );
            }
        }
        self.obs.recorder.instant_id(
            dst.as_u32(),
            Unit::Net,
            "deliver",
            arrival,
            Bucket::Hw,
            size,
            tid,
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn net(contention: Contention) -> TNet {
        TNet::new(Torus::new(4, 4), TNetParams::default(), contention)
    }

    #[test]
    fn latency_formula_matches_figure7() {
        let mut n = net(Contention::None);
        let src = CellId::new(0);
        let dst = CellId::new(3); // 1 hop away on 4-wide torus (wrap)
        let hops = n.torus().hops(src, dst);
        assert_eq!(hops, 1);
        let t = n.transfer(SimTime::ZERO, src, dst, 100);
        // 160 prolog + 160*1 hop + 40*100 bytes = 4320 ns
        assert_eq!(t.as_nanos(), 160 + 160 + 4000);
    }

    #[test]
    fn zero_byte_message_is_pure_latency() {
        let mut n = net(Contention::None);
        let t = n.transfer(SimTime::ZERO, CellId::new(0), CellId::new(1), 0);
        assert_eq!(t.as_nanos(), 160 + 160);
    }

    #[test]
    fn per_pair_fifo_holds_even_for_shrinking_messages() {
        let mut n = net(Contention::None);
        let (a, b) = (CellId::new(0), CellId::new(5));
        // Big message first, tiny message a moment later: the tiny one must
        // NOT arrive earlier.
        let t1 = n.transfer(SimTime::ZERO, a, b, 100_000);
        let t2 = n.transfer(SimTime::from_nanos(10), a, b, 4);
        assert!(t2 >= t1, "t2={t2:?} overtook t1={t1:?}");
    }

    #[test]
    fn distinct_pairs_do_not_interfere_without_contention() {
        let mut n = net(Contention::None);
        let t1 = n.transfer(SimTime::ZERO, CellId::new(0), CellId::new(1), 1_000_000);
        let t2 = n.transfer(SimTime::ZERO, CellId::new(2), CellId::new(3), 4);
        assert!(t2 < t1);
    }

    #[test]
    fn port_contention_serializes_sends() {
        let mut n = net(Contention::Ports);
        let src = CellId::new(0);
        // Two 1000-byte messages to different destinations leave the same
        // injection channel back to back.
        let t1 = n.transfer(SimTime::ZERO, src, CellId::new(1), 1000);
        let t2 = n.transfer(SimTime::ZERO, src, CellId::new(2), 1000);
        assert!(t2 >= t1, "second send must finish no earlier");
        assert!(t2.as_nanos() >= 2 * 40_000, "serialization must stack");
    }

    #[test]
    fn stats_accumulate() {
        let mut n = net(Contention::None);
        n.transfer(SimTime::ZERO, CellId::new(0), CellId::new(1), 10);
        n.transfer(SimTime::ZERO, CellId::new(1), CellId::new(0), 20);
        let s = n.stats();
        assert_eq!(s.messages, 2);
        assert_eq!(s.bytes, 30);
        assert_eq!(s.total_hops, 2);
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        /// FIFO per pair under arbitrary interleavings, both contention
        /// models, and arrival is never before injection + minimum latency.
        #[test]
        fn fifo_and_causality(
            msgs in proptest::collection::vec((0u64..1000, 0u32..16, 0u32..16, 0u64..5000), 1..60),
            model in 0u8..3,
        ) {
            let c = match model {
                0 => Contention::None,
                1 => Contention::Ports,
                _ => Contention::Links,
            };
            let mut n = TNet::new(Torus::new(4, 4), TNetParams::default(), c);
            let mut last: HashMap<(u32, u32), SimTime> = HashMap::new();
            // Feed messages in nondecreasing injection order.
            let mut sorted = msgs;
            sorted.sort_by_key(|m| m.0);
            for (t, s, d, size) in sorted {
                let now = SimTime::from_nanos(t);
                let arr = n.transfer(now, CellId::new(s), CellId::new(d), size);
                prop_assert!(arr >= now + TNetParams::default().prolog);
                let e = last.entry((s, d)).or_insert(SimTime::ZERO);
                prop_assert!(arr >= *e, "FIFO violated for pair ({s},{d})");
                *e = arr;
            }
        }
    }
}

#[cfg(test)]
mod link_contention_tests {
    use super::*;

    fn net() -> TNet {
        TNet::new(Torus::new(4, 1), TNetParams::default(), Contention::Links)
    }

    #[test]
    fn shared_link_serializes_flows() {
        // 0→2 and 1→2 both cross link 1→2 on a 4×1 ring.
        let mut n = net();
        let t1 = n.transfer(SimTime::ZERO, CellId::new(0), CellId::new(2), 10_000);
        let t2 = n.transfer(SimTime::ZERO, CellId::new(1), CellId::new(2), 10_000);
        // Each message serializes 400 µs on the shared link: no overlap.
        assert!(
            t2.as_nanos() >= t1.as_nanos() + 300_000,
            "t1 {t1}, t2 {t2} — expected head-of-line blocking"
        );
    }

    #[test]
    fn disjoint_paths_do_not_interact() {
        let mut n = net();
        let t1 = n.transfer(SimTime::ZERO, CellId::new(0), CellId::new(1), 10_000);
        let t2 = n.transfer(SimTime::ZERO, CellId::new(2), CellId::new(3), 10_000);
        assert!(t2.as_nanos() < t1.as_nanos() + 1_000, "t1 {t1}, t2 {t2}");
    }

    #[test]
    fn links_model_is_never_faster_than_pure_latency() {
        let mut lat = TNet::new(Torus::new(4, 4), TNetParams::default(), Contention::None);
        let mut lnk = TNet::new(Torus::new(4, 4), TNetParams::default(), Contention::Links);
        for (s, d, b) in [
            (0u32, 5u32, 100u64),
            (1, 5, 2000),
            (0, 15, 40),
            (3, 12, 999),
        ] {
            let a = lat.transfer(SimTime::ZERO, CellId::new(s), CellId::new(d), b);
            let c = lnk.transfer(SimTime::ZERO, CellId::new(s), CellId::new(d), b);
            assert!(
                c >= a.saturating_sub(SimTime::from_nanos(200)),
                "{s}->{d}: {c} < {a}"
            );
        }
    }
}

#[cfg(test)]
mod fault_tests {
    use super::*;
    use apfault::{FaultEvent, FaultKind, FaultSpec, RecoveryParams};

    fn c(i: u32) -> CellId {
        CellId::new(i)
    }

    fn outage_plan(from: u32, to: u32, until_ns: u64) -> FaultPlan {
        FaultPlan::new(&FaultSpec {
            seed: None,
            recovery: RecoveryParams::default(),
            events: vec![FaultEvent {
                from: SimTime::ZERO,
                until: SimTime::from_nanos(until_ns),
                kind: FaultKind::LinkDown {
                    from: c(from),
                    to: c(to),
                },
            }],
        })
    }

    #[test]
    fn outage_drops_first_then_detours() {
        let mut n = TNet::new(Torus::new(4, 4), TNetParams::default(), Contention::None);
        // 0 -> 6 routes X then Y through link 1->2 at (1,0)->(2,0).
        let (src, dst) = (c(0), c(6));
        assert!(n
            .torus()
            .route(src, dst)
            .windows(2)
            .any(|w| w == [c(1), c(2)]));
        let mut plan = outage_plan(1, 2, 1_000_000);
        // Discovery: first crossing is lost.
        assert_eq!(
            n.transfer_faulty(SimTime::ZERO, src, dst, 100, 0, &mut plan)
                .unwrap(),
            Delivery::Dropped
        );
        // Retry detours Y-then-X and arrives with the same hop count.
        let retry_at = SimTime::from_nanos(10_000);
        let d = n
            .transfer_faulty(retry_at, src, dst, 100, 0, &mut plan)
            .unwrap();
        let Delivery::Delivered { at, detoured } = d else {
            panic!("retry should detour, got {d:?}");
        };
        assert!(detoured);
        let hops = n.torus().hops(src, dst) as u64;
        assert_eq!(
            at.as_nanos() - retry_at.as_nanos(),
            160 + 160 * hops + 40 * 100
        );
        assert_eq!(plan.report.drops, 1);
        assert_eq!(plan.report.detours, 1);
        // After the window heals the primary route is back in use.
        let healed = n
            .transfer_faulty(SimTime::from_nanos(2_000_000), src, dst, 100, 0, &mut plan)
            .unwrap();
        assert!(matches!(
            healed,
            Delivery::Delivered {
                detoured: false,
                ..
            }
        ));
    }

    #[test]
    fn same_row_outage_has_no_detour() {
        let mut n = TNet::new(Torus::new(4, 4), TNetParams::default(), Contention::None);
        let (src, dst) = (c(0), c(2)); // pure X move through 0->1->2
        let mut plan = outage_plan(0, 1, 1_000_000);
        assert_eq!(
            n.transfer_faulty(SimTime::ZERO, src, dst, 4, 0, &mut plan)
                .unwrap(),
            Delivery::Dropped,
            "discovery"
        );
        assert_eq!(
            n.transfer_faulty(SimTime::from_nanos(100), src, dst, 4, 0, &mut plan)
                .unwrap(),
            Delivery::Dropped,
            "detour equals the primary route, so the packet is lost again"
        );
        assert_eq!(plan.report.drops, 2);
        assert_eq!(plan.report.detours, 0);
        // The outage end restores delivery.
        assert!(matches!(
            n.transfer_faulty(SimTime::from_nanos(1_000_000), src, dst, 4, 0, &mut plan)
                .unwrap(),
            Delivery::Delivered {
                detoured: false,
                ..
            }
        ));
    }

    #[test]
    fn injected_delay_stretches_arrival_but_keeps_fifo() {
        let mut n = TNet::new(Torus::new(4, 4), TNetParams::default(), Contention::None);
        let mut plan = FaultPlan::new(&FaultSpec {
            seed: None,
            recovery: RecoveryParams::default(),
            events: vec![FaultEvent {
                from: SimTime::ZERO,
                until: SimTime::from_nanos(500),
                kind: FaultKind::Delay {
                    src: c(0),
                    dst: c(1),
                    extra: SimTime::from_nanos(7_000),
                },
            }],
        });
        let Delivery::Delivered { at: slow, .. } = n
            .transfer_faulty(SimTime::ZERO, c(0), c(1), 0, 0, &mut plan)
            .unwrap()
        else {
            panic!("delayed packet must still deliver")
        };
        assert_eq!(slow.as_nanos(), 160 + 160 + 7_000);
        // A packet sent after the window would land earlier on its own,
        // but per-pair FIFO holds it behind the delayed one.
        let Delivery::Delivered { at: held, .. } = n
            .transfer_faulty(SimTime::from_nanos(600), c(0), c(1), 0, 0, &mut plan)
            .unwrap()
        else {
            panic!()
        };
        assert!(held >= slow, "FIFO must hold under injected delay");
    }

    #[test]
    fn faulty_transfer_without_matching_events_prices_like_the_clean_path() {
        let mut clean = TNet::new(Torus::new(4, 4), TNetParams::default(), Contention::Links);
        let mut faulty = TNet::new(Torus::new(4, 4), TNetParams::default(), Contention::Links);
        let mut plan = outage_plan(3, 0, 10); // never crossed after t=10
        for (t, s, d, b) in [
            (100u64, 0u32, 5u32, 64u64),
            (120, 1, 5, 800),
            (130, 0, 5, 8),
        ] {
            let now = SimTime::from_nanos(t);
            let want = clean.transfer_tagged(now, c(s), c(d), b, 0);
            let got = faulty
                .transfer_faulty(now, c(s), c(d), b, 0, &mut plan)
                .unwrap();
            assert_eq!(
                got,
                Delivery::Delivered {
                    at: want,
                    detoured: false
                }
            );
        }
    }
}

#[cfg(test)]
mod obs_tests {
    use super::*;

    #[test]
    fn histograms_collect_without_enabling_events() {
        let mut n = TNet::new(Torus::new(4, 4), TNetParams::default(), Contention::None);
        n.transfer(SimTime::ZERO, CellId::new(0), CellId::new(5), 128);
        assert_eq!(n.obs().msg_size.count(), 1);
        assert_eq!(n.obs().msg_size.max(), 128);
        assert!(n.obs().latency.min() > 0);
        assert!(n.take_events().is_empty(), "events need enable_events()");
    }

    #[test]
    fn events_cover_injection_hops_and_delivery() {
        let mut n = TNet::new(Torus::new(4, 4), TNetParams::default(), Contention::None);
        n.enable_events();
        let (src, dst) = (CellId::new(0), CellId::new(2)); // 2 hops on a 4-wide ring row
        let arrival = n.transfer(SimTime::ZERO, src, dst, 64);
        let evs = n.take_events();
        let inject: Vec<_> = evs.iter().filter(|e| e.name == "transfer").collect();
        assert_eq!(inject.len(), 1);
        assert_eq!(inject[0].cell, src.as_u32());
        assert_eq!(inject[0].end(), arrival);
        assert_eq!(
            evs.iter().filter(|e| e.name == "hop").count() as u32,
            n.torus().hops(src, dst) - 1
        );
        let deliver: Vec<_> = evs.iter().filter(|e| e.name == "deliver").collect();
        assert_eq!(deliver.len(), 1);
        assert_eq!(deliver[0].cell, dst.as_u32());
        assert_eq!(deliver[0].start, arrival);
        assert!(n.take_events().is_empty(), "drained");
    }
}

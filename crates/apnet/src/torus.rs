//! The two-dimensional torus topology of the T-net.
//!
//! Cells are arranged in a `width × height` grid with wraparound in both
//! dimensions. Routing is **static dimension-order (X then Y)** with
//! minimal wraparound in each dimension — the paper's acknowledge trick
//! (§4.1) depends on the T-net "using static routing and passing
//! messages in order", and static dimension-order routing gives exactly
//! that: every (src, dst) pair always uses the same path.

use aputil::CellId;

/// A `width × height` torus over densely numbered cells
/// (`id = y * width + x`).
///
/// # Examples
///
/// ```
/// use apnet::Torus;
/// use aputil::CellId;
///
/// let t = Torus::for_cells(16); // 4×4
/// assert_eq!(t.dims(), (4, 4));
/// assert_eq!(t.hops(CellId::new(0), CellId::new(15)), 2); // wrap both dims
/// ```
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Torus {
    width: u32,
    height: u32,
}

impl Torus {
    /// Creates a torus with explicit dimensions.
    ///
    /// # Panics
    ///
    /// Panics if either dimension is zero.
    pub fn new(width: u32, height: u32) -> Self {
        assert!(width > 0 && height > 0, "torus dimensions must be nonzero");
        Torus { width, height }
    }

    /// Chooses the most nearly square torus for `ncells` cells, the way the
    /// machine was configured (e.g. 64 cells → 8×8, 128 → 16×8).
    ///
    /// # Panics
    ///
    /// Panics if `ncells` is zero.
    pub fn for_cells(ncells: u32) -> Self {
        assert!(ncells > 0, "machine must have at least one cell");
        // Largest divisor of ncells not exceeding sqrt(ncells).
        let mut best = 1;
        let mut d = 1;
        while d * d <= ncells {
            if ncells.is_multiple_of(d) {
                best = d;
            }
            d += 1;
        }
        Torus::new(ncells / best, best)
    }

    /// `(width, height)`.
    pub fn dims(self) -> (u32, u32) {
        (self.width, self.height)
    }

    /// Number of cells.
    pub fn ncells(self) -> u32 {
        self.width * self.height
    }

    /// The `(x, y)` coordinate of a cell.
    ///
    /// # Panics
    ///
    /// Panics if the cell is outside this torus.
    pub fn coords(self, cell: CellId) -> (u32, u32) {
        let i = cell.as_u32();
        assert!(
            i < self.ncells(),
            "{cell} outside {}x{} torus",
            self.width,
            self.height
        );
        (i % self.width, i / self.width)
    }

    /// The cell at `(x, y)` (coordinates taken modulo the dimensions).
    pub fn cell_at(self, x: u32, y: u32) -> CellId {
        CellId::new((y % self.height) * self.width + (x % self.width))
    }

    /// Signed minimal displacement along one dimension with wraparound;
    /// ties (exactly half way) route in the positive direction, which keeps
    /// routing static.
    fn delta(from: u32, to: u32, dim: u32) -> i64 {
        // Widen to u64: `to + dim` overflows u32 for dims near u32::MAX
        // (an N×1 torus of a huge prime cell count reaches this).
        let (from, to, dim) = (from as u64, to as u64, dim as u64);
        let fwd = (to + dim - from) % dim; // steps in + direction
        let bwd = dim - fwd; // steps in - direction (if fwd != 0)
        if fwd == 0 {
            0
        } else if fwd <= bwd {
            fwd as i64
        } else {
            -(bwd as i64)
        }
    }

    /// Hop count of the static X-then-Y route between two cells.
    pub fn hops(self, src: CellId, dst: CellId) -> u32 {
        let (sx, sy) = self.coords(src);
        let (dx, dy) = self.coords(dst);
        (Self::delta(sx, dx, self.width).unsigned_abs()
            + Self::delta(sy, dy, self.height).unsigned_abs()) as u32
    }

    /// The full static route as the sequence of cells visited, starting at
    /// `src` and ending at `dst` (X dimension resolved first, then Y).
    pub fn route(self, src: CellId, dst: CellId) -> Vec<CellId> {
        let (sx, sy) = self.coords(src);
        let (dx, dy) = self.coords(dst);
        let mut path = vec![src];
        let mut x = sx as i64;
        let step_x = Self::delta(sx, dx, self.width).signum();
        while (x.rem_euclid(self.width as i64)) as u32 != dx {
            x += step_x;
            path.push(self.cell_at(x.rem_euclid(self.width as i64) as u32, sy));
        }
        let mut y = sy as i64;
        let step_y = Self::delta(sy, dy, self.height).signum();
        while (y.rem_euclid(self.height as i64)) as u32 != dy {
            y += step_y;
            path.push(self.cell_at(dx, y.rem_euclid(self.height as i64) as u32));
        }
        path
    }

    /// The deterministic **detour** route: Y dimension resolved first, then
    /// X. Same hop count as [`Torus::route`], and for any pair that moves
    /// in both dimensions it is link-disjoint with the primary route — the
    /// fault layer uses it to steer packets around a downed link. Pairs
    /// that move in only one dimension (same row or column, including
    /// every pair on an N×1 torus) have no distinct detour: `route_yx`
    /// equals `route` and recovery falls back to retry-until-heal.
    pub fn route_yx(self, src: CellId, dst: CellId) -> Vec<CellId> {
        let (sx, sy) = self.coords(src);
        let (dx, dy) = self.coords(dst);
        let mut path = vec![src];
        let mut y = sy as i64;
        let step_y = Self::delta(sy, dy, self.height).signum();
        while (y.rem_euclid(self.height as i64)) as u32 != dy {
            y += step_y;
            path.push(self.cell_at(sx, y.rem_euclid(self.height as i64) as u32));
        }
        let mut x = sx as i64;
        let step_x = Self::delta(sx, dx, self.width).signum();
        while (x.rem_euclid(self.width as i64)) as u32 != dx {
            x += step_x;
            path.push(self.cell_at(x.rem_euclid(self.width as i64) as u32, dy));
        }
        path
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn near_square_factorization() {
        assert_eq!(Torus::for_cells(64).dims(), (8, 8));
        assert_eq!(Torus::for_cells(128).dims(), (16, 8));
        assert_eq!(Torus::for_cells(16).dims(), (4, 4));
        assert_eq!(Torus::for_cells(1).dims(), (1, 1));
        assert_eq!(Torus::for_cells(7).dims(), (7, 1));
        assert_eq!(Torus::for_cells(1024).dims(), (32, 32));
    }

    #[test]
    fn hop_counts_wrap() {
        let t = Torus::new(8, 8);
        assert_eq!(t.hops(CellId::new(0), CellId::new(0)), 0);
        assert_eq!(t.hops(CellId::new(0), CellId::new(7)), 1); // wrap in x
        assert_eq!(t.hops(CellId::new(0), CellId::new(3)), 3);
        assert_eq!(t.hops(CellId::new(0), CellId::new(4)), 4); // half way
        let far = t.cell_at(4, 4);
        assert_eq!(t.hops(CellId::new(0), far), 8); // worst case on 8x8
    }

    #[test]
    fn hops_symmetric() {
        let t = Torus::new(6, 4);
        for a in 0..t.ncells() {
            for b in 0..t.ncells() {
                assert_eq!(
                    t.hops(CellId::new(a), CellId::new(b)),
                    t.hops(CellId::new(b), CellId::new(a)),
                    "asymmetric hops {a}->{b}"
                );
            }
        }
    }

    #[test]
    fn route_is_x_then_y_and_length_matches_hops() {
        let t = Torus::new(4, 4);
        let src = t.cell_at(0, 0);
        let dst = t.cell_at(2, 3);
        let route = t.route(src, dst);
        assert_eq!(route.first(), Some(&src));
        assert_eq!(route.last(), Some(&dst));
        assert_eq!(route.len() as u32 - 1, t.hops(src, dst));
        // X resolved first: second node must differ in x, same y.
        let (x1, y1) = t.coords(route[1]);
        assert_eq!(y1, 0);
        assert_ne!(x1, 0);
    }

    #[test]
    fn route_to_self_is_trivial() {
        let t = Torus::new(3, 3);
        assert_eq!(
            t.route(CellId::new(4), CellId::new(4)),
            vec![CellId::new(4)]
        );
    }

    #[test]
    #[should_panic(expected = "outside")]
    fn coords_out_of_range_panics() {
        Torus::new(2, 2).coords(CellId::new(4));
    }

    #[test]
    fn detour_route_is_link_disjoint_when_both_dims_move() {
        let t = Torus::new(4, 4);
        let src = t.cell_at(0, 0);
        let dst = t.cell_at(2, 3);
        let xy = t.route(src, dst);
        let yx = t.route_yx(src, dst);
        assert_eq!(yx.first(), Some(&src));
        assert_eq!(yx.last(), Some(&dst));
        assert_eq!(yx.len(), xy.len(), "same hop count");
        // Y first: second node differs in y, same x.
        let (x1, y1) = t.coords(yx[1]);
        assert_eq!(x1, 0);
        assert_ne!(y1, 0);
        let links = |r: &[CellId]| -> std::collections::HashSet<(CellId, CellId)> {
            r.windows(2).map(|w| (w[0], w[1])).collect()
        };
        assert!(
            links(&xy).is_disjoint(&links(&yx)),
            "primary and detour share a link"
        );
    }

    #[test]
    fn detour_degenerates_on_single_dimension_moves() {
        let t = Torus::new(4, 4);
        // Same row: no distinct detour exists.
        assert_eq!(
            t.route_yx(t.cell_at(0, 1), t.cell_at(2, 1)),
            t.route(t.cell_at(0, 1), t.cell_at(2, 1))
        );
        let ring = Torus::new(5, 1);
        assert_eq!(
            ring.route_yx(CellId::new(0), CellId::new(3)),
            ring.route(CellId::new(0), CellId::new(3))
        );
    }

    #[test]
    fn delta_survives_u32_max_sized_dims() {
        // `to + dim` exceeds u32::MAX here; the math must widen.
        let t = Torus::new(u32::MAX, 1);
        assert_eq!(t.hops(CellId::new(0), CellId::new(u32::MAX - 1)), 1);
        assert_eq!(t.hops(CellId::new(u32::MAX - 1), CellId::new(0)), 1);
        assert_eq!(t.hops(CellId::new(1), CellId::new(u32::MAX - 2)), 3);
        assert_eq!(
            t.hops(CellId::new(0), CellId::new(u32::MAX / 2)),
            u32::MAX / 2
        );
    }

    #[test]
    fn prime_cell_counts_route_on_nx1_tori() {
        for n in [2u32, 3, 5, 7, 11, 13] {
            let t = Torus::for_cells(n);
            assert_eq!(t.dims(), (n, 1), "{n} cells should give an Nx1 torus");
            for a in 0..n {
                for b in 0..n {
                    let (src, dst) = (CellId::new(a), CellId::new(b));
                    let route = t.route(src, dst);
                    assert_eq!(route.first(), Some(&src));
                    assert_eq!(route.last(), Some(&dst));
                    assert_eq!(
                        route.len() as u32 - 1,
                        t.hops(src, dst),
                        "route/hops disagree for {a}->{b} on {n}x1"
                    );
                    assert_eq!(t.hops(src, dst), t.hops(dst, src));
                }
            }
        }
    }

    #[test]
    fn half_way_ties_route_positive_in_both_dims() {
        // On an even-sided torus the exact-half-way displacement is a tie;
        // both directions must break it the same (positive) way or routing
        // stops being static.
        let t = Torus::new(6, 4);
        let src = t.cell_at(1, 1);
        let dst = t.cell_at(4, 3); // dx = 3 = 6/2, dy = 2 = 4/2: ties in both
        assert_eq!(t.hops(src, dst), 5);
        assert_eq!(t.hops(dst, src), 5);
        let fwd = t.route(src, dst);
        assert_eq!(fwd.len(), 6);
        // X first, stepping in the positive direction.
        assert_eq!(fwd[1], t.cell_at(2, 1));
        assert_eq!(fwd[3], t.cell_at(4, 1));
        // Y also positive.
        assert_eq!(fwd[4], t.cell_at(4, 2));
        // The reverse route ties the same way: positive steps from dst.
        let back = t.route(dst, src);
        assert_eq!(back.len(), 6);
        assert_eq!(back[1], t.cell_at(5, 3));
        assert_eq!(back[4], t.cell_at(1, 0));
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        /// Routes are static, acyclic, start/end correctly, and their length
        /// equals the hop count.
        #[test]
        fn routes_are_consistent(w in 1u32..10, h in 1u32..10, a in 0u32..100, b in 0u32..100) {
            let t = Torus::new(w, h);
            let src = CellId::new(a % t.ncells());
            let dst = CellId::new(b % t.ncells());
            let r1 = t.route(src, dst);
            let r2 = t.route(src, dst);
            prop_assert_eq!(&r1, &r2, "routing must be static");
            prop_assert_eq!(r1.len() as u32 - 1, t.hops(src, dst));
            let unique: std::collections::HashSet<_> = r1.iter().collect();
            prop_assert_eq!(unique.len(), r1.len(), "route revisits a cell");
            // The detour obeys the same invariants with the same length.
            let d = t.route_yx(src, dst);
            prop_assert_eq!(d.len(), r1.len(), "detour changes hop count");
            prop_assert_eq!(d.first(), r1.first());
            prop_assert_eq!(d.last(), r1.last());
            let unique: std::collections::HashSet<_> = d.iter().collect();
            prop_assert_eq!(unique.len(), d.len(), "detour revisits a cell");
        }

        /// Hop count obeys the torus diameter bound.
        #[test]
        fn hops_bounded_by_diameter(w in 1u32..12, h in 1u32..12, a in 0u32..200, b in 0u32..200) {
            let t = Torus::new(w, h);
            let src = CellId::new(a % t.ncells());
            let dst = CellId::new(b % t.ncells());
            prop_assert!(t.hops(src, dst) <= w / 2 + h / 2 + 1);
        }
    }
}

//! AP1000+ interconnect models.
//!
//! The AP1000+ keeps three independent networks (paper §4, Figure 4):
//!
//! * [`tnet::TNet`] — the two-dimensional torus for point-to-point
//!   messages (25 MB/s per channel, static routing, wormhole, in-order
//!   delivery per source/destination pair).
//! * [`bnet::BNet`] — the broadcast network used for data
//!   distribution/collection (50 MB/s, one sender at a time).
//! * [`snet::SNet`] — the synchronization network providing hardware
//!   barriers across all cells.
//!
//! All three are *timing* models layered on the discrete-event kernel: they
//! answer "when does this message arrive?" while the payload movement is
//! done by the MSC+/MC models in `apmsc`/`apmem`.

pub mod bnet;
pub mod snet;
pub mod tnet;
pub mod torus;

pub use bnet::BNet;
pub use snet::SNet;
pub use tnet::{Contention, Delivery, TNet, TNetParams};
pub use torus::Torus;

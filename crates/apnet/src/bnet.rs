//! The B-net broadcast network.
//!
//! Paper §4: *"a broadcast network, or B-net, for broadcast communication
//! and data distribution and collection"*, 50 MB/s (Figure 5). The B-net is
//! a bus: one sender holds it at a time, and a broadcast reaches every cell
//! at the same instant once the payload has been serialized.

use apsim::Resource;
use aputil::{CellId, SimTime};

/// Timing and arbitration model of the broadcast bus.
///
/// # Examples
///
/// ```
/// use apnet::BNet;
/// use aputil::{CellId, SimTime};
///
/// let mut b = BNet::new(16);
/// let t1 = b.broadcast(SimTime::ZERO, CellId::new(0), 1000);
/// let t2 = b.broadcast(SimTime::ZERO, CellId::new(1), 1000);
/// assert!(t2 > t1, "bus serializes broadcasts");
/// ```
#[derive(Clone, Debug)]
pub struct BNet {
    bus: Resource,
    prolog: SimTime,
    per_byte: SimTime,
    ncells: u32,
    broadcasts: u64,
    bytes: u64,
}

impl BNet {
    /// Creates a B-net for `ncells` cells with the hardware defaults
    /// (0.16 µs prolog, 50 MB/s ⇒ 20 ns per byte).
    ///
    /// # Panics
    ///
    /// Panics if `ncells` is zero.
    pub fn new(ncells: u32) -> Self {
        Self::with_params(
            ncells,
            SimTime::from_micros_f64(0.16),
            SimTime::from_nanos(20),
        )
    }

    /// Creates a B-net with explicit timing parameters.
    ///
    /// # Panics
    ///
    /// Panics if `ncells` is zero.
    pub fn with_params(ncells: u32, prolog: SimTime, per_byte: SimTime) -> Self {
        assert!(ncells > 0, "B-net needs at least one cell");
        BNet {
            bus: Resource::new(),
            prolog,
            per_byte,
            ncells,
            broadcasts: 0,
            bytes: 0,
        }
    }

    /// Number of cells on the bus.
    pub fn ncells(&self) -> u32 {
        self.ncells
    }

    /// Broadcasts `size` bytes from `src` at `now`; returns the instant the
    /// payload is visible at **all** cells.
    ///
    /// # Panics
    ///
    /// Panics if `src` is not on the bus.
    pub fn broadcast(&mut self, now: SimTime, src: CellId, size: u64) -> SimTime {
        assert!(
            src.as_u32() < self.ncells,
            "{src} is not on this {}-cell B-net",
            self.ncells
        );
        let hold = self.prolog + self.per_byte.saturating_mul(size);
        let (_, end) = self.bus.reserve(now, hold);
        self.broadcasts += 1;
        self.bytes += size;
        end
    }

    /// `(broadcasts, payload bytes)` carried so far.
    pub fn counters(&self) -> (u64, u64) {
        (self.broadcasts, self.bytes)
    }

    /// Fraction of time the bus has been busy up to its last grant.
    pub fn busy_time(&self) -> SimTime {
        self.bus.busy_time()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn latency_is_prolog_plus_serialization() {
        let mut b = BNet::new(4);
        let t = b.broadcast(SimTime::ZERO, CellId::new(0), 100);
        assert_eq!(t.as_nanos(), 160 + 2000);
    }

    #[test]
    fn bus_arbitration_serializes() {
        let mut b = BNet::new(4);
        let t1 = b.broadcast(SimTime::ZERO, CellId::new(0), 50);
        let t2 = b.broadcast(SimTime::from_nanos(10), CellId::new(1), 50);
        assert_eq!(t2, t1 + SimTime::from_nanos(160 + 1000));
        assert_eq!(b.counters(), (2, 100));
    }

    #[test]
    fn idle_bus_grants_immediately() {
        let mut b = BNet::new(4);
        b.broadcast(SimTime::ZERO, CellId::new(0), 10);
        let late = SimTime::from_millis(1);
        let t = b.broadcast(late, CellId::new(2), 0);
        assert_eq!(t, late + SimTime::from_nanos(160));
    }

    #[test]
    #[should_panic(expected = "not on this")]
    fn foreign_cell_panics() {
        let mut b = BNet::new(2);
        b.broadcast(SimTime::ZERO, CellId::new(5), 1);
    }
}

//! Cell (processing element) identifiers.

use core::fmt;

/// Identifier of one AP1000+ cell (processing element).
///
/// The AP1000+ scales from 4 to 1024 cells (Table 1); cell IDs are dense
/// indices `0..ncells`. The T-net maps them onto a 2-D torus — that mapping
/// lives in `apnet`, the ID itself is topology-agnostic.
///
/// # Examples
///
/// ```
/// use aputil::CellId;
///
/// let c = CellId::new(3);
/// assert_eq!(c.index(), 3);
/// assert_eq!(format!("{c}"), "cell3");
/// ```
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug, Default)]
pub struct CellId(u32);

impl CellId {
    /// Cell 0, conventionally the "root" for reductions and broadcasts.
    pub const ROOT: CellId = CellId(0);

    /// Creates a cell ID from a dense index.
    #[inline]
    pub const fn new(index: u32) -> Self {
        CellId(index)
    }

    /// The dense index of this cell.
    #[inline]
    pub const fn index(self) -> usize {
        self.0 as usize
    }

    /// The raw `u32` value.
    #[inline]
    pub const fn as_u32(self) -> u32 {
        self.0
    }
}

impl From<u32> for CellId {
    fn from(v: u32) -> Self {
        CellId(v)
    }
}

impl fmt::Display for CellId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "cell{}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ordering_follows_index() {
        assert!(CellId::new(1) < CellId::new(2));
        assert_eq!(CellId::ROOT, CellId::new(0));
    }

    #[test]
    fn conversions() {
        let c: CellId = 7u32.into();
        assert_eq!(c.index(), 7);
        assert_eq!(c.as_u32(), 7);
    }
}

//! Common foundation types for the AP1000+ reproduction.
//!
//! This crate holds the small vocabulary shared by every other crate in the
//! workspace: simulated time ([`SimTime`]), cell identifiers ([`CellId`]),
//! logical and physical addresses ([`VAddr`], [`PAddr`]), byte codecs for
//! moving typed data through simulated memory, and the workspace-wide error
//! type ([`ApError`]).
//!
//! # Examples
//!
//! ```
//! use aputil::{SimTime, CellId};
//!
//! let t = SimTime::from_micros_f64(0.16) + SimTime::from_nanos(40);
//! assert_eq!(t.as_nanos(), 200);
//! let c = CellId::new(5);
//! assert_eq!(c.index(), 5);
//! ```

pub mod addr;
pub mod bytes;
pub mod error;
pub mod fault;
pub mod fsio;
pub mod hash;
pub mod id;
pub mod json;
pub mod proc;
pub mod time;

pub use addr::{PAddr, VAddr};
pub use error::{ApError, ApResult, BlockReason, BlockedCell, DeadlockReport};
pub use fault::{CellLostReport, DeliveryFailure, FaultReport, InjectedFault};
pub use fsio::write_atomic;
pub use hash::{fnv1a_64, key_hex, parse_key_hex};
pub use id::CellId;
pub use json::{write_json_escaped, Json, JsonError, JsonErrorKind, MAX_JSON_DEPTH};
pub use proc::{exit_desc, spawn_limited, TailBuf};
pub use time::SimTime;

//! Logical and physical addresses.
//!
//! The AP1000+ programs specify *logical* addresses for PUT/GET (§4.1: "The
//! program specifies a logical address for the PUT/GET operation"); the MC's
//! MMU translates them to *physical* addresses. Keeping the two as distinct
//! newtypes means the type checker enforces that no component ever feeds an
//! untranslated address to the DMA engines.

use core::fmt;
use core::ops::{Add, Sub};

/// A logical (virtual) address in a cell's address space.
///
/// # Examples
///
/// ```
/// use aputil::VAddr;
///
/// let base = VAddr::new(0x1000);
/// assert_eq!((base + 8).as_u64(), 0x1008);
/// assert_eq!(base.offset_from(VAddr::new(0x0ff8)), 8);
/// ```
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug, Default)]
pub struct VAddr(u64);

/// A physical address produced by MMU translation.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug, Default)]
pub struct PAddr(u64);

/// The conventional "null" logical address.
///
/// §4.1: "If address 0 is specified as the destination address, the GET
/// packet goes and comes back, and does not copy the data in remote memory"
/// — the acknowledge-packet trick. `VAddr::NULL` is that address.
impl VAddr {
    /// Address zero; see the type-level docs for its special role in
    /// acknowledge packets.
    pub const NULL: VAddr = VAddr(0);

    /// Creates a logical address.
    #[inline]
    pub const fn new(a: u64) -> Self {
        VAddr(a)
    }

    /// The raw address value.
    #[inline]
    pub const fn as_u64(self) -> u64 {
        self.0
    }

    /// `true` for the null (acknowledge) address.
    #[inline]
    pub const fn is_null(self) -> bool {
        self.0 == 0
    }

    /// Byte distance from `other` to `self`.
    ///
    /// # Panics
    ///
    /// Panics if `other > self`.
    #[inline]
    pub fn offset_from(self, other: VAddr) -> u64 {
        self.0
            .checked_sub(other.0)
            .expect("VAddr::offset_from underflowed")
    }

    /// Checked addition of a byte offset.
    #[inline]
    pub fn checked_add(self, off: u64) -> Option<VAddr> {
        self.0.checked_add(off).map(VAddr)
    }
}

impl PAddr {
    /// Creates a physical address.
    #[inline]
    pub const fn new(a: u64) -> Self {
        PAddr(a)
    }

    /// The raw address value.
    #[inline]
    pub const fn as_u64(self) -> u64 {
        self.0
    }

    /// Checked addition of a byte offset.
    #[inline]
    pub fn checked_add(self, off: u64) -> Option<PAddr> {
        self.0.checked_add(off).map(PAddr)
    }
}

impl Add<u64> for VAddr {
    type Output = VAddr;
    /// # Panics
    ///
    /// Panics on address-space overflow.
    #[inline]
    fn add(self, rhs: u64) -> VAddr {
        VAddr(self.0.checked_add(rhs).expect("VAddr overflow"))
    }
}

impl Sub<u64> for VAddr {
    type Output = VAddr;
    /// # Panics
    ///
    /// Panics on underflow below address zero.
    #[inline]
    fn sub(self, rhs: u64) -> VAddr {
        VAddr(self.0.checked_sub(rhs).expect("VAddr underflow"))
    }
}

impl Add<u64> for PAddr {
    type Output = PAddr;
    /// # Panics
    ///
    /// Panics on address-space overflow.
    #[inline]
    fn add(self, rhs: u64) -> PAddr {
        PAddr(self.0.checked_add(rhs).expect("PAddr overflow"))
    }
}

impl fmt::Display for VAddr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "v:{:#x}", self.0)
    }
}

impl fmt::Display for PAddr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "p:{:#x}", self.0)
    }
}

impl fmt::LowerHex for VAddr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::LowerHex::fmt(&self.0, f)
    }
}

impl fmt::LowerHex for PAddr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::LowerHex::fmt(&self.0, f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn null_detection() {
        assert!(VAddr::NULL.is_null());
        assert!(!VAddr::new(4).is_null());
    }

    #[test]
    fn arithmetic() {
        let a = VAddr::new(0x100);
        assert_eq!((a + 0x10).as_u64(), 0x110);
        assert_eq!((a - 0x10).as_u64(), 0xf0);
        assert_eq!(a.offset_from(VAddr::new(0x80)), 0x80);
        assert_eq!(a.checked_add(u64::MAX), None);
    }

    #[test]
    #[should_panic(expected = "underflow")]
    fn vaddr_underflow_panics() {
        let _ = VAddr::new(1) - 2;
    }

    #[test]
    fn display_formats() {
        assert_eq!(VAddr::new(0x20).to_string(), "v:0x20");
        assert_eq!(PAddr::new(0x20).to_string(), "p:0x20");
        assert_eq!(format!("{:x}", VAddr::new(255)), "ff");
    }
}

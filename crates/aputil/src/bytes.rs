//! Little-endian byte codecs for typed values in simulated memory.
//!
//! Application data in the emulator lives in simulated cell memories as raw
//! bytes, exactly like on the real machine. These helpers convert between
//! Rust values and those byte images. Everything is little-endian — the
//! simulated machine picks one endianness and sticks to it (the real
//! SuperSPARC was big-endian; the choice is invisible to the model, and
//! little-endian matches the host for cheap debugging).

/// A plain-old-data scalar that can live in simulated memory.
///
/// This trait is sealed: it is implemented for exactly the scalar types the
/// workloads use (`u32`, `u64`, `i32`, `i64`, `f32`, `f64`) and cannot be
/// implemented downstream.
pub trait Pod: private::Sealed + Copy + Default + 'static {
    /// Size of the encoded value in bytes.
    const SIZE: usize;

    /// Encodes `self` into `out`.
    ///
    /// # Panics
    ///
    /// Panics if `out.len() != Self::SIZE`.
    fn write_le(self, out: &mut [u8]);

    /// Decodes a value from `input`.
    ///
    /// # Panics
    ///
    /// Panics if `input.len() != Self::SIZE`.
    fn read_le(input: &[u8]) -> Self;
}

mod private {
    pub trait Sealed {}
    impl Sealed for u32 {}
    impl Sealed for u64 {}
    impl Sealed for i32 {}
    impl Sealed for i64 {}
    impl Sealed for f32 {}
    impl Sealed for f64 {}
}

macro_rules! impl_pod {
    ($($t:ty),*) => {$(
        impl Pod for $t {
            const SIZE: usize = core::mem::size_of::<$t>();

            #[inline]
            fn write_le(self, out: &mut [u8]) {
                out.copy_from_slice(&self.to_le_bytes());
            }

            #[inline]
            fn read_le(input: &[u8]) -> Self {
                <$t>::from_le_bytes(input.try_into().expect("Pod::read_le: wrong slice length"))
            }
        }
    )*};
}

impl_pod!(u32, u64, i32, i64, f32, f64);

/// Encodes a slice of scalars into a fresh byte vector.
///
/// # Examples
///
/// ```
/// let bytes = aputil::bytes::encode_slice(&[1.0f64, 2.0]);
/// assert_eq!(bytes.len(), 16);
/// let back: Vec<f64> = aputil::bytes::decode_slice(&bytes);
/// assert_eq!(back, vec![1.0, 2.0]);
/// ```
pub fn encode_slice<T: Pod>(values: &[T]) -> Vec<u8> {
    let mut out = vec![0u8; values.len() * T::SIZE];
    for (v, chunk) in values.iter().zip(out.chunks_exact_mut(T::SIZE)) {
        v.write_le(chunk);
    }
    out
}

/// Decodes a byte slice into a vector of scalars.
///
/// # Panics
///
/// Panics if `bytes.len()` is not a multiple of `T::SIZE`.
pub fn decode_slice<T: Pod>(bytes: &[u8]) -> Vec<T> {
    assert!(
        bytes.len().is_multiple_of(T::SIZE),
        "decode_slice: {} bytes is not a multiple of {}",
        bytes.len(),
        T::SIZE
    );
    bytes.chunks_exact(T::SIZE).map(T::read_le).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalar_round_trips() {
        let mut buf = [0u8; 8];
        42u64.write_le(&mut buf);
        assert_eq!(u64::read_le(&buf), 42);
        let mut buf = [0u8; 8];
        (-1.5f64).write_le(&mut buf);
        assert_eq!(f64::read_le(&buf), -1.5);
        let mut buf = [0u8; 4];
        (-7i32).write_le(&mut buf);
        assert_eq!(i32::read_le(&buf), -7);
    }

    #[test]
    fn slice_round_trips() {
        let xs = [1u32, 2, 3, u32::MAX];
        assert_eq!(decode_slice::<u32>(&encode_slice(&xs)), xs);
        let empty: [f64; 0] = [];
        assert!(encode_slice(&empty).is_empty());
    }

    #[test]
    #[should_panic(expected = "not a multiple")]
    fn decode_rejects_ragged_input() {
        let _ = decode_slice::<u64>(&[0u8; 7]);
    }

    #[test]
    fn nan_payload_preserved() {
        let weird = f64::from_bits(0x7ff8_dead_beef_0001);
        let bytes = encode_slice(&[weird]);
        assert_eq!(decode_slice::<f64>(&bytes)[0].to_bits(), weird.to_bits());
    }
}

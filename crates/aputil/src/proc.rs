//! Child-process helpers for the sandboxed worker mode.
//!
//! The serving layer (DESIGN.md §11) executes jobs in self-exec'd child
//! processes so a panicking, aborting, or OOM-killed simulation cannot
//! take down the server. This module holds the process plumbing that is
//! policy-free enough to live in the foundation crate:
//!
//! - [`spawn_limited`]: spawn a command with piped stdio and an optional
//!   address-space ceiling. The workspace has no libc binding, so the
//!   rlimit is applied best-effort by launching through
//!   `/bin/sh -c 'ulimit -v KB; exec "$@"'` — with `exec`, the shell
//!   replaces itself, so the returned [`Child`] pid *is* the job and
//!   `kill` reaches it directly.
//! - [`TailBuf`]: a bounded byte tail for capturing the last N bytes of
//!   a child's stderr without letting a log-spewing job grow server
//!   memory.
//! - [`exit_desc`]: one honest line about how a child died (exit code or
//!   signal), for structured `job_crashed` error documents.

use std::process::{Child, Command, ExitStatus, Stdio};

/// Keeps the last `cap` bytes pushed into it — the "stderr tail" a
/// crashed job's error document carries. Bounded by construction: a
/// child that writes gigabytes of diagnostics costs the server `cap`
/// bytes, no more.
#[derive(Debug)]
pub struct TailBuf {
    cap: usize,
    buf: Vec<u8>,
    truncated: bool,
}

impl TailBuf {
    pub fn new(cap: usize) -> TailBuf {
        TailBuf {
            cap: cap.max(1),
            buf: Vec::new(),
            truncated: false,
        }
    }

    /// Appends `bytes`, discarding from the front to stay within `cap`.
    pub fn push(&mut self, bytes: &[u8]) {
        if bytes.len() >= self.cap {
            if !self.buf.is_empty() || bytes.len() > self.cap {
                self.truncated = true;
            }
            self.buf.clear();
            self.buf.extend_from_slice(&bytes[bytes.len() - self.cap..]);
            return;
        }
        let overflow = (self.buf.len() + bytes.len()).saturating_sub(self.cap);
        if overflow > 0 {
            self.buf.drain(..overflow);
            self.truncated = true;
        }
        self.buf.extend_from_slice(bytes);
    }

    /// The retained tail as text (lossy on non-UTF-8), prefixed with an
    /// ellipsis when earlier bytes were discarded.
    pub fn render(&self) -> String {
        let text = String::from_utf8_lossy(&self.buf);
        if self.truncated {
            format!("...{text}")
        } else {
            text.into_owned()
        }
    }

    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }
}

/// Spawns `program args...` with all three stdio streams piped.
///
/// When `mem_limit_bytes` is given (and the platform is unix), the child
/// is launched through `/bin/sh` with `ulimit -v` set to the ceiling in
/// KiB before `exec`ing the real program — so a runaway allocation in
/// the job fails (and the allocator aborts the *child*) instead of
/// triggering the kernel OOM killer against the whole server. The limit
/// is best-effort: if the shell cannot lower it, the job still runs.
pub fn spawn_limited(
    program: &str,
    args: &[String],
    mem_limit_bytes: Option<u64>,
) -> std::io::Result<Child> {
    let mut cmd = match mem_limit_bytes {
        Some(bytes) if cfg!(unix) => {
            let kb = (bytes / 1024).max(1);
            let mut c = Command::new("/bin/sh");
            c.arg("-c")
                .arg(format!("ulimit -v {kb} 2>/dev/null; exec \"$@\""))
                .arg("sh")
                .arg(program)
                .args(args);
            c
        }
        _ => {
            let mut c = Command::new(program);
            c.args(args);
            c
        }
    };
    cmd.stdin(Stdio::piped())
        .stdout(Stdio::piped())
        .stderr(Stdio::piped());
    cmd.spawn()
}

/// One line describing how a child exited: `exit code N`, or on unix
/// `killed by signal N` when it died to a signal (SIGKILL from the
/// deadline enforcer, SIGABRT from `abort`, SIGSEGV, the OOM killer...).
pub fn exit_desc(status: &ExitStatus) -> String {
    #[cfg(unix)]
    {
        use std::os::unix::process::ExitStatusExt;
        if let Some(sig) = status.signal() {
            return format!("killed by signal {sig}");
        }
    }
    match status.code() {
        Some(c) => format!("exit code {c}"),
        None => "exited abnormally".to_string(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::{Read, Write};

    #[test]
    fn tail_buf_keeps_only_the_tail() {
        let mut t = TailBuf::new(8);
        t.push(b"abc");
        assert_eq!(t.render(), "abc");
        t.push(b"defgh");
        assert_eq!(t.render(), "abcdefgh");
        t.push(b"XY");
        assert_eq!(t.render(), "...cdefghXY");
        // A single oversized push keeps its own tail.
        let mut t = TailBuf::new(4);
        t.push(b"0123456789");
        assert_eq!(t.render(), "...6789");
        // An exactly-cap push into an empty buffer is not truncated.
        let mut t = TailBuf::new(4);
        t.push(b"wxyz");
        assert_eq!(t.render(), "wxyz");
    }

    #[test]
    fn spawn_round_trips_stdio() {
        // `cat` echoes stdin to stdout; exercises the piped plumbing.
        let mut child = spawn_limited("cat", &[], None).expect("spawn cat");
        child
            .stdin
            .take()
            .unwrap()
            .write_all(b"ping")
            .expect("write stdin");
        let mut out = String::new();
        child
            .stdout
            .take()
            .unwrap()
            .read_to_string(&mut out)
            .expect("read stdout");
        let status = child.wait().expect("wait");
        assert!(status.success());
        assert_eq!(out, "ping");
        assert_eq!(exit_desc(&status), "exit code 0");
    }

    #[cfg(unix)]
    #[test]
    fn limited_spawn_still_runs_and_signals_are_described() {
        // A generous limit must not break an ordinary child.
        let mut child = spawn_limited(
            "/bin/sh",
            &["-c".to_string(), "echo ok".to_string()],
            Some(1 << 32),
        )
        .expect("spawn limited");
        let mut out = String::new();
        child
            .stdout
            .take()
            .unwrap()
            .read_to_string(&mut out)
            .unwrap();
        assert!(child.wait().unwrap().success());
        assert_eq!(out.trim(), "ok");

        // A killed child is described as a signal, not an exit code.
        let mut child = spawn_limited("sleep", &["30".to_string()], None).expect("spawn sleep");
        child.kill().unwrap();
        let status = child.wait().unwrap();
        assert_eq!(exit_desc(&status), "killed by signal 9");
    }
}

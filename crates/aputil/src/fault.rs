//! Structured fault diagnostics.
//!
//! The fault-injection layer (the `apfault` crate plus the kernel's
//! recovery path) reports everything it did through one [`FaultReport`]:
//! the schedule it injected, the retries/detours/suppressions the recovery
//! protocol performed, and — when the run could not survive — the precise
//! delivery failures and crashed cells. The report renders to a canonical
//! byte-stable text so that reruns of the same seed can be compared with
//! `cmp`.

use crate::{CellId, SimTime};
use core::fmt;

/// One fault the injector actually applied, stamped with the simulated
/// time at which it took effect.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct InjectedFault {
    /// Simulated time of the injection.
    pub at: SimTime,
    /// Canonical description, e.g. `"link cell1->cell2 drop"` or
    /// `"corrupt cell0->cell3 PUT"`.
    pub what: String,
}

impl fmt::Display for InjectedFault {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}: {}", self.at, self.what)
    }
}

/// A packet the recovery layer gave up on after exhausting its retries.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct DeliveryFailure {
    /// Sending cell.
    pub src: CellId,
    /// Destination cell.
    pub dst: CellId,
    /// Packet kind, e.g. `"PutData"`.
    pub op: &'static str,
    /// Attempts made (first send plus retries).
    pub attempts: u32,
    /// Simulated time at which retries were exhausted.
    pub at: SimTime,
}

impl fmt::Display for DeliveryFailure {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} {}->{} undeliverable after {} attempts at {}",
            self.op, self.src, self.dst, self.attempts, self.at
        )
    }
}

/// Everything the fault layer injected and the recovery layer did about
/// it, in one deterministic record.
#[derive(Clone, PartialEq, Eq, Debug, Default)]
pub struct FaultReport {
    /// Seed the schedule was generated from (`None` for hand-written
    /// specs).
    pub seed: Option<u64>,
    /// Faults applied, in simulated-time order.
    pub injected: Vec<InjectedFault>,
    /// Retransmissions per packet kind, sorted by kind name.
    pub retries_by_op: Vec<(String, u64)>,
    /// Packets the network dropped (outage or injected drop).
    pub drops: u64,
    /// Packets whose checksum failed at the receiver and were discarded.
    pub corrupt_detected: u64,
    /// Duplicate deliveries suppressed by `(src, seq)` replay dedup.
    pub dup_suppressed: u64,
    /// Packets that travelled the Y-then-X detour around a downed link.
    pub detours: u64,
    /// Acknowledgements delivered back to senders.
    pub acks: u64,
    /// Cells killed fail-stop, `(cell, crash time)` in time order.
    pub crashed: Vec<(CellId, SimTime)>,
    /// Packets whose retries were exhausted.
    pub failures: Vec<DeliveryFailure>,
    /// Why the run ended early, when it did (empty for survived runs).
    pub cause: String,
}

impl FaultReport {
    /// Total retransmissions across all packet kinds.
    pub fn total_retries(&self) -> u64 {
        self.retries_by_op.iter().map(|(_, n)| n).sum()
    }

    /// `true` if the run completed despite the schedule: nothing crashed,
    /// nothing was undeliverable, and no abort cause was recorded.
    pub fn survived(&self) -> bool {
        self.crashed.is_empty() && self.failures.is_empty() && self.cause.is_empty()
    }

    /// Canonical multi-line rendering. Byte-stable for a given schedule:
    /// reruns of the same seed serialize to identical text.
    pub fn render(&self) -> String {
        use core::fmt::Write as _;
        let mut s = String::new();
        s.push_str("fault report\n");
        match self.seed {
            Some(seed) => {
                let _ = writeln!(s, "  seed: {seed}");
            }
            None => s.push_str("  seed: none (explicit spec)\n"),
        }
        let _ = writeln!(
            s,
            "  outcome: {}",
            if self.survived() {
                "survived"
            } else {
                "aborted"
            }
        );
        if !self.cause.is_empty() {
            let _ = writeln!(s, "  cause: {}", self.cause);
        }
        let _ = writeln!(s, "  injected ({}):", self.injected.len());
        for inj in &self.injected {
            let _ = writeln!(s, "    {inj}");
        }
        let _ = writeln!(s, "  retries ({} total):", self.total_retries());
        for (op, n) in &self.retries_by_op {
            let _ = writeln!(s, "    {op}: {n}");
        }
        let _ = writeln!(
            s,
            "  drops: {}  corrupt: {}  dups: {}  detours: {}  acks: {}",
            self.drops, self.corrupt_detected, self.dup_suppressed, self.detours, self.acks
        );
        if !self.crashed.is_empty() {
            let _ = writeln!(s, "  crashed ({}):", self.crashed.len());
            for (cell, at) in &self.crashed {
                let _ = writeln!(s, "    {cell} at {at}");
            }
        }
        if !self.failures.is_empty() {
            let _ = writeln!(s, "  undeliverable ({}):", self.failures.len());
            for fail in &self.failures {
                let _ = writeln!(s, "    {fail}");
            }
        }
        s
    }
}

impl fmt::Display for FaultReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}: {} injected, {} retries, {} drops, {} crashed",
            if self.survived() {
                "survived faults"
            } else {
                "aborted under faults"
            },
            self.injected.len(),
            self.total_retries(),
            self.drops,
            self.crashed.len(),
        )?;
        if !self.cause.is_empty() {
            write!(f, " ({})", self.cause)?;
        }
        Ok(())
    }
}

/// Why a cell became unreachable, carried by [`crate::ApError::CellLost`]:
/// the structured replacement for the old opaque "channel closed" failure.
/// Same shape as a [`crate::DeadlockReport`] entry — it names the last
/// request the cell issued and, if the kernel had it parked, its block
/// state.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct CellLostReport {
    /// The cell whose program thread went away.
    pub cell: CellId,
    /// How the loss was detected (e.g. `"request channel closed"`).
    pub reason: String,
    /// Simulated time of detection.
    pub now: SimTime,
    /// Name of the last request the cell issued, if it issued any.
    pub last_request: Option<&'static str>,
    /// The cell's block state at the time, if the kernel had it blocked.
    pub blocked: Option<crate::BlockedCell>,
}

impl fmt::Display for CellLostReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} lost at {}: {}", self.cell, self.now, self.reason)?;
        match self.last_request {
            Some(req) => write!(f, "; last request {req}")?,
            None => write!(f, "; no requests issued")?,
        }
        if let Some(b) = &self.blocked {
            write!(f, "; blocked on {} since {}", b.reason, b.since)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> FaultReport {
        FaultReport {
            seed: Some(42),
            injected: vec![InjectedFault {
                at: SimTime::from_nanos(100),
                what: "link cell0->cell1 down".into(),
            }],
            retries_by_op: vec![("GetReq".into(), 1), ("PutData".into(), 3)],
            drops: 4,
            corrupt_detected: 1,
            dup_suppressed: 2,
            detours: 5,
            acks: 40,
            crashed: vec![],
            failures: vec![],
            cause: String::new(),
        }
    }

    #[test]
    fn render_is_deterministic_and_informative() {
        let r = sample();
        let a = r.render();
        let b = r.clone().render();
        assert_eq!(a, b);
        assert!(a.contains("seed: 42"));
        assert!(a.contains("outcome: survived"));
        assert!(a.contains("PutData: 3"));
        assert!(a.contains("detours: 5"));
        assert_eq!(r.total_retries(), 4);
        assert!(r.survived());
    }

    #[test]
    fn aborted_report_lists_failures() {
        let mut r = sample();
        r.crashed.push((CellId::new(2), SimTime::from_nanos(500)));
        r.failures.push(DeliveryFailure {
            src: CellId::new(0),
            dst: CellId::new(2),
            op: "PutData",
            attempts: 9,
            at: SimTime::from_nanos(900),
        });
        r.cause = "2 of 4 cells never finished".into();
        assert!(!r.survived());
        let text = r.render();
        assert!(text.contains("outcome: aborted"));
        assert!(text.contains("cause: 2 of 4 cells never finished"));
        assert!(text.contains("cell2 at 500 ns") || text.contains("cell2 at"));
        assert!(text.contains("undeliverable after 9 attempts"));
    }

    #[test]
    fn cell_lost_display_names_last_request() {
        let r = CellLostReport {
            cell: CellId::new(3),
            reason: "request channel closed".into(),
            now: SimTime::from_nanos(250),
            last_request: Some("Put"),
            blocked: None,
        };
        let text = r.to_string();
        assert!(text.contains("cell3"));
        assert!(text.contains("last request Put"));
    }
}

//! The workspace-wide error type.

use crate::fault::{CellLostReport, FaultReport};
use crate::{CellId, SimTime, VAddr};
use core::fmt;
use std::error::Error;

/// Convenient result alias for fallible AP1000+ operations.
pub type ApResult<T> = Result<T, ApError>;

/// Why a cell was blocked when the machine deadlocked.
#[derive(Clone, PartialEq, Eq, Debug)]
#[non_exhaustive]
pub enum BlockReason {
    /// Waiting for a completion flag to reach `target` (stuck at `current`).
    FlagWait {
        flag: VAddr,
        current: u32,
        target: u32,
    },
    /// Arrived at an S-net barrier other cells never reached.
    Barrier,
    /// Blocking RECEIVE with no matching ring-buffer message from `src`.
    Recv { src: CellId },
    /// SEND whose send-DMA completion never fired.
    Send,
    /// B-net broadcast collective missing participants.
    Bcast,
    /// Communication-register load waiting for a p-bit that never set.
    RegLoad { reg: u16 },
    /// DSM remote load whose reply never arrived.
    RemoteLoad,
    /// Remote-store fence with stores still unacknowledged.
    RemoteFence { issued: u64, acked: u64 },
    /// A reason the kernel did not classify further.
    Other(&'static str),
}

impl fmt::Display for BlockReason {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BlockReason::FlagWait {
                flag,
                current,
                target,
            } => {
                write!(f, "wait_flag({flag} = {current}, want {target})")
            }
            BlockReason::Barrier => write!(f, "barrier"),
            BlockReason::Recv { src } => write!(f, "recv(from {src})"),
            BlockReason::Send => write!(f, "send"),
            BlockReason::Bcast => write!(f, "bcast"),
            BlockReason::RegLoad { reg } => write!(f, "reg_load(reg {reg})"),
            BlockReason::RemoteLoad => write!(f, "remote_load"),
            BlockReason::RemoteFence { issued, acked } => {
                write!(f, "remote_fence({acked}/{issued} acked)")
            }
            BlockReason::Other(s) => write!(f, "{s}"),
        }
    }
}

/// One blocked cell's state at deadlock detection.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct BlockedCell {
    /// Which cell.
    pub cell: CellId,
    /// What it was blocked on.
    pub reason: BlockReason,
    /// Simulated time at which it blocked.
    pub since: SimTime,
    /// Pending entries in its MSC+ transmit queues: `(queue name, depth)`,
    /// only queues with work listed.
    pub pending_tx: Vec<(&'static str, usize)>,
}

impl fmt::Display for BlockedCell {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}: {} since {}", self.cell, self.reason, self.since)?;
        if !self.pending_tx.is_empty() {
            write!(f, " (pending:")?;
            for (name, depth) in &self.pending_tx {
                write!(f, " {name}={depth}")?;
            }
            write!(f, ")")?;
        }
        Ok(())
    }
}

/// Structured diagnostics carried by [`ApError::Deadlock`]: a snapshot of
/// every still-blocked cell when the event queue drained with unfinished
/// cells.
#[derive(Clone, PartialEq, Eq, Debug, Default)]
pub struct DeadlockReport {
    /// Simulated time at which deadlock was detected.
    pub now: SimTime,
    /// Cells in the machine.
    pub total_cells: u32,
    /// Cells whose programs ran to completion.
    pub finished_cells: u32,
    /// Per-cell blocked state, in cell order.
    pub blocked: Vec<BlockedCell>,
}

impl DeadlockReport {
    /// The blocked-state entry for `cell`, if that cell was blocked.
    pub fn cell(&self, cell: CellId) -> Option<&BlockedCell> {
        self.blocked.iter().find(|b| b.cell == cell)
    }
}

impl fmt::Display for DeadlockReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} of {} cells never finished at {} [",
            self.total_cells - self.finished_cells,
            self.total_cells,
            self.now
        )?;
        for (i, b) in self.blocked.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{b}")?;
        }
        write!(f, "]")
    }
}

/// Errors raised by the machine model and runtime.
///
/// The paper's protection story (§3.2, §4.1) is that user programs may pass
/// illegal addresses to user-level DMA, so the *hardware* must detect them:
/// a bad address raises a page fault and interrupts the program. That
/// hardware event surfaces here as [`ApError::PageFault`].
#[derive(Clone, PartialEq, Eq, Debug)]
#[non_exhaustive]
pub enum ApError {
    /// MMU translation failed: the logical address is unmapped on `cell`.
    PageFault {
        /// Cell whose MMU raised the fault.
        cell: CellId,
        /// Faulting logical address.
        addr: VAddr,
    },
    /// A transfer or access would cross the end of a mapped region.
    OutOfRange {
        /// Cell on which the access was attempted.
        cell: CellId,
        /// Start of the offending access.
        addr: VAddr,
        /// Length in bytes of the offending access.
        len: u64,
    },
    /// A destination cell ID does not exist in this machine.
    NoSuchCell {
        /// The invalid ID.
        cell: CellId,
        /// Number of cells in the machine.
        ncells: usize,
    },
    /// An argument was structurally invalid (zero-size DMA, mismatched
    /// stride totals, bad group, …).
    InvalidArg(String),
    /// A hardware queue and its DRAM spill buffer were both exhausted.
    QueueExhausted {
        /// Human-readable queue name (e.g. `"user send"`).
        queue: &'static str,
    },
    /// The simulated program deadlocked: every cell is blocked and no events
    /// remain. Carries a per-cell snapshot of what each blocked cell was
    /// waiting on.
    Deadlock(Box<DeadlockReport>),
    /// A cell program panicked or exited abnormally.
    CellFailed {
        /// Which cell failed.
        cell: CellId,
        /// Panic payload or failure description.
        reason: String,
    },
    /// More than one cell program failed in the same run; every failure is
    /// listed in cell order.
    CellsFailed {
        /// `(cell, reason)` for each failed cell.
        failures: Vec<(CellId, String)>,
    },
    /// The S-net barrier protocol was violated: a cell arrived twice in one
    /// epoch, or a cell outside the machine arrived. Barrier entry is
    /// driven by the kernel, so this indicates a kernel or runtime bug
    /// rather than a user-program error.
    BarrierMisuse {
        /// The offending cell.
        cell: CellId,
        /// What it did wrong.
        detail: String,
    },
    /// A run completed but hardware or bookkeeping state was left behind —
    /// queued transmit entries, a busy send DMA, blocked-cell records, or
    /// unfinished transfer-latency attributions. Indicates a kernel
    /// accounting bug, never a program error.
    StateLeak {
        /// Every leak found, `;`-separated.
        detail: String,
    },
    /// An injected fault schedule proved unsurvivable: a crashed cell
    /// never finished, or a packet exhausted its retries. The report
    /// carries the full injected schedule and recovery history.
    Fault(Box<FaultReport>),
    /// A cell's program thread went away mid-run (channel closed without a
    /// clean finish). Carries the last request the cell issued and its
    /// block state, like a one-cell [`DeadlockReport`].
    CellLost(Box<CellLostReport>),
    /// A barrier can never complete because a participant is dead. Raised
    /// eagerly — at the first arrival after (or crash during) the barrier
    /// — instead of hanging until deadlock detection.
    BarrierAborted {
        /// Simulated time of the abort.
        at: SimTime,
        /// Cells already waiting at the barrier.
        waiting: Vec<CellId>,
        /// Dead cells that can never arrive.
        dead: Vec<CellId>,
    },
    /// A kernel-internal invariant broke mid-run: a hardware unit lost
    /// track of bookkeeping it must hold (an active DMA job, an
    /// outstanding fault envelope, collective state, the windowed
    /// engine). Indicates a kernel bug, never a program error — raised
    /// as a structured error naming the cell and unit instead of
    /// panicking, so the run dies with a diagnosable report and the
    /// caller's cleanup still runs.
    Internal {
        /// Cell whose unit's bookkeeping broke, when attributable.
        cell: Option<CellId>,
        /// Hardware unit or kernel subsystem involved (`"send-dma"`,
        /// `"fault-layer"`, `"bnet"`, …).
        unit: &'static str,
        /// What was missing or inconsistent.
        detail: String,
    },
    /// A host-filesystem operation failed (writing a trace, a bench
    /// report, a flight dump, …). Always names the path so a full disk or
    /// a bad `--out` directory is diagnosable without a backtrace.
    Io {
        /// Path of the file or directory the operation touched.
        path: String,
        /// The underlying OS error, rendered.
        detail: String,
    },
}

impl ApError {
    /// Wraps an [`std::io::Error`] with the path it happened on.
    pub fn io(path: impl Into<String>, err: std::io::Error) -> ApError {
        ApError::Io {
            path: path.into(),
            detail: err.to_string(),
        }
    }

    /// Builds an [`ApError::Internal`]; pass a [`CellId`] when the broken
    /// invariant is attributable to one cell's unit, `None` otherwise.
    pub fn internal(
        cell: impl Into<Option<CellId>>,
        unit: &'static str,
        detail: impl Into<String>,
    ) -> ApError {
        ApError::Internal {
            cell: cell.into(),
            unit,
            detail: detail.into(),
        }
    }
}

impl fmt::Display for ApError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ApError::PageFault { cell, addr } => {
                write!(f, "page fault on {cell} at {addr}")
            }
            ApError::OutOfRange { cell, addr, len } => {
                write!(f, "access out of range on {cell} at {addr} len {len}")
            }
            ApError::NoSuchCell { cell, ncells } => {
                write!(f, "no such cell {cell} (machine has {ncells} cells)")
            }
            ApError::InvalidArg(msg) => write!(f, "invalid argument: {msg}"),
            ApError::QueueExhausted { queue } => {
                write!(f, "{queue} queue and spill buffer exhausted")
            }
            ApError::Deadlock(report) => write!(f, "simulation deadlock: {report}"),
            ApError::CellFailed { cell, reason } => {
                write!(f, "{cell} failed: {reason}")
            }
            ApError::CellsFailed { failures } => {
                write!(f, "{} cells failed:", failures.len())?;
                for (cell, reason) in failures {
                    write!(f, " [{cell}: {reason}]")?;
                }
                Ok(())
            }
            ApError::BarrierMisuse { cell, detail } => {
                write!(f, "S-net barrier misuse by {cell}: {detail}")
            }
            ApError::StateLeak { detail } => {
                write!(f, "state leaked past end of run: {detail}")
            }
            ApError::Fault(report) => write!(f, "fault injection: {report}"),
            ApError::CellLost(report) => write!(f, "cell lost: {report}"),
            ApError::BarrierAborted { at, waiting, dead } => {
                write!(f, "barrier aborted at {at}: dead participants [")?;
                for (i, c) in dead.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{c}")?;
                }
                write!(f, "], waiting [")?;
                for (i, c) in waiting.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{c}")?;
                }
                write!(f, "]")
            }
            ApError::Internal { cell, unit, detail } => match cell {
                Some(c) => write!(f, "internal kernel error on {c} in {unit}: {detail}"),
                None => write!(f, "internal kernel error in {unit}: {detail}"),
            },
            ApError::Io { path, detail } => {
                write!(f, "i/o error on {path}: {detail}")
            }
        }
    }
}

impl Error for ApError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let e = ApError::PageFault {
            cell: CellId::new(3),
            addr: VAddr::new(0x10),
        };
        assert_eq!(e.to_string(), "page fault on cell3 at v:0x10");
        let e = ApError::QueueExhausted { queue: "user send" };
        assert!(e.to_string().contains("user send"));
        let e = ApError::io(
            "/tmp/out/trace.evtrace",
            std::io::Error::other("no space left on device"),
        );
        let s = e.to_string();
        assert!(
            s.contains("/tmp/out/trace.evtrace") && s.contains("no space left"),
            "io error must name the path and the cause: {s}"
        );
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<ApError>();
    }
}

//! The workspace-wide error type.

use crate::{CellId, VAddr};
use core::fmt;
use std::error::Error;

/// Convenient result alias for fallible AP1000+ operations.
pub type ApResult<T> = Result<T, ApError>;

/// Errors raised by the machine model and runtime.
///
/// The paper's protection story (§3.2, §4.1) is that user programs may pass
/// illegal addresses to user-level DMA, so the *hardware* must detect them:
/// a bad address raises a page fault and interrupts the program. That
/// hardware event surfaces here as [`ApError::PageFault`].
#[derive(Clone, PartialEq, Eq, Debug)]
#[non_exhaustive]
pub enum ApError {
    /// MMU translation failed: the logical address is unmapped on `cell`.
    PageFault {
        /// Cell whose MMU raised the fault.
        cell: CellId,
        /// Faulting logical address.
        addr: VAddr,
    },
    /// A transfer or access would cross the end of a mapped region.
    OutOfRange {
        /// Cell on which the access was attempted.
        cell: CellId,
        /// Start of the offending access.
        addr: VAddr,
        /// Length in bytes of the offending access.
        len: u64,
    },
    /// A destination cell ID does not exist in this machine.
    NoSuchCell {
        /// The invalid ID.
        cell: CellId,
        /// Number of cells in the machine.
        ncells: usize,
    },
    /// An argument was structurally invalid (zero-size DMA, mismatched
    /// stride totals, bad group, …).
    InvalidArg(String),
    /// A hardware queue and its DRAM spill buffer were both exhausted.
    QueueExhausted {
        /// Human-readable queue name (e.g. `"user send"`).
        queue: &'static str,
    },
    /// The simulated program deadlocked: every cell is blocked and no events
    /// remain.
    Deadlock(String),
    /// A cell program panicked or exited abnormally.
    CellFailed {
        /// Which cell failed.
        cell: CellId,
        /// Panic payload or failure description.
        reason: String,
    },
}

impl fmt::Display for ApError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ApError::PageFault { cell, addr } => {
                write!(f, "page fault on {cell} at {addr}")
            }
            ApError::OutOfRange { cell, addr, len } => {
                write!(f, "access out of range on {cell} at {addr} len {len}")
            }
            ApError::NoSuchCell { cell, ncells } => {
                write!(f, "no such cell {cell} (machine has {ncells} cells)")
            }
            ApError::InvalidArg(msg) => write!(f, "invalid argument: {msg}"),
            ApError::QueueExhausted { queue } => {
                write!(f, "{queue} queue and spill buffer exhausted")
            }
            ApError::Deadlock(msg) => write!(f, "simulation deadlock: {msg}"),
            ApError::CellFailed { cell, reason } => {
                write!(f, "{cell} failed: {reason}")
            }
        }
    }
}

impl Error for ApError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let e = ApError::PageFault {
            cell: CellId::new(3),
            addr: VAddr::new(0x10),
        };
        assert_eq!(e.to_string(), "page fault on cell3 at v:0x10");
        let e = ApError::QueueExhausted { queue: "user send" };
        assert!(e.to_string().contains("user send"));
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<ApError>();
    }
}

//! A small, dependency-free JSON value type with a writer and parser.
//!
//! The workspace serializes probe traces, run counters, and Chrome-trace
//! timelines without external crates (the build environment is offline),
//! so this module provides the minimal JSON machinery those features need:
//! an ordered-object [`Json`] value, a compact writer ([`Json::to_string`]
//! via `Display`), and a recursive-descent parser ([`Json::parse`]).
//!
//! Unsigned and signed integers are kept in dedicated variants so `u64`
//! values (addresses, nanosecond timestamps) round-trip exactly rather
//! than through an `f64`.
//!
//! # Examples
//!
//! ```
//! use aputil::json::Json;
//!
//! let v = Json::obj([
//!     ("name", Json::from("put")),
//!     ("bytes", Json::from(1024u64)),
//! ]);
//! let text = v.to_string();
//! assert_eq!(text, r#"{"name":"put","bytes":1024}"#);
//! let back = Json::parse(&text).unwrap();
//! assert_eq!(back.get("bytes").and_then(Json::as_u64), Some(1024));
//! ```

use core::fmt;

/// A JSON value. Object member order is preserved.
#[derive(Clone, Debug, PartialEq)]
pub enum Json {
    Null,
    Bool(bool),
    /// Non-negative integer (exact `u64`).
    U(u64),
    /// Negative integer.
    I(i64),
    /// Floating-point number.
    F(f64),
    Str(String),
    Arr(Vec<Json>),
    Obj(Vec<(String, Json)>),
}

/// Maximum container nesting depth [`Json::parse`] accepts. The parser is
/// recursive-descent, so unbounded `[[[[…]]]]` input would otherwise grow
/// the host stack until the process dies; anything legitimately produced
/// by this workspace nests a handful of levels.
pub const MAX_JSON_DEPTH: usize = 128;

/// What class of failure a [`JsonError`] reports.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum JsonErrorKind {
    /// Malformed input (bad token, truncation, trailing garbage, …).
    Syntax,
    /// Containers nested deeper than [`MAX_JSON_DEPTH`].
    TooDeep,
}

/// Parse failure: kind, byte offset, and description.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct JsonError {
    pub kind: JsonErrorKind,
    pub offset: usize,
    pub message: String,
}

impl fmt::Display for JsonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "JSON parse error at byte {}: {}",
            self.offset, self.message
        )
    }
}

impl std::error::Error for JsonError {}

impl From<bool> for Json {
    fn from(v: bool) -> Json {
        Json::Bool(v)
    }
}
impl From<u64> for Json {
    fn from(v: u64) -> Json {
        Json::U(v)
    }
}
impl From<u32> for Json {
    fn from(v: u32) -> Json {
        Json::U(v as u64)
    }
}
impl From<usize> for Json {
    fn from(v: usize) -> Json {
        Json::U(v as u64)
    }
}
impl From<i64> for Json {
    fn from(v: i64) -> Json {
        if v < 0 {
            Json::I(v)
        } else {
            Json::U(v as u64)
        }
    }
}
impl From<f64> for Json {
    fn from(v: f64) -> Json {
        Json::F(v)
    }
}
impl From<&str> for Json {
    fn from(v: &str) -> Json {
        Json::Str(v.to_string())
    }
}
impl From<String> for Json {
    fn from(v: String) -> Json {
        Json::Str(v)
    }
}
impl<T: Into<Json>> From<Vec<T>> for Json {
    fn from(v: Vec<T>) -> Json {
        Json::Arr(v.into_iter().map(Into::into).collect())
    }
}

impl Json {
    /// Builds an object from `(key, value)` pairs, preserving order.
    pub fn obj<K: Into<String>, V: Into<Json>>(pairs: impl IntoIterator<Item = (K, V)>) -> Json {
        Json::Obj(
            pairs
                .into_iter()
                .map(|(k, v)| (k.into(), v.into()))
                .collect(),
        )
    }

    /// Member lookup on objects; `None` elsewhere.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(members) => members.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::U(v) => Some(*v),
            // Strict upper bound: `u64::MAX as f64` rounds up to 2^64, so a
            // `<=` comparison would admit a float of exactly 2^64 whose
            // `as u64` cast silently saturates to `u64::MAX`. Every integral
            // float strictly below 2^64 (the largest is 2^64 - 2048)
            // converts exactly.
            Json::F(f) if *f >= 0.0 && f.fract() == 0.0 && *f < u64::MAX as f64 => Some(*f as u64),
            _ => None,
        }
    }

    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Json::U(v) if *v <= i64::MAX as u64 => Some(*v as i64),
            Json::I(v) => Some(*v),
            _ => None,
        }
    }

    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::U(v) => Some(*v as f64),
            Json::I(v) => Some(*v as f64),
            Json::F(v) => Some(*v),
            _ => None,
        }
    }

    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    pub fn as_obj(&self) -> Option<&[(String, Json)]> {
        match self {
            Json::Obj(members) => Some(members),
            _ => None,
        }
    }

    /// Recursively sorts every object's members by key, producing the
    /// canonical form used for content addressing: two documents that
    /// differ only in member order (or in integral-float spelling of the
    /// same logical value, once both pass through typed accessors)
    /// canonicalize to the same bytes. Arrays keep their order — element
    /// order is semantically significant.
    pub fn canonicalize(&self) -> Json {
        match self {
            Json::Arr(items) => Json::Arr(items.iter().map(Json::canonicalize).collect()),
            Json::Obj(members) => {
                let mut sorted: Vec<(String, Json)> = members
                    .iter()
                    .map(|(k, v)| (k.clone(), v.canonicalize()))
                    .collect();
                sorted.sort_by(|a, b| a.0.cmp(&b.0));
                Json::Obj(sorted)
            }
            other => other.clone(),
        }
    }

    /// Parses a complete JSON document (surrounding whitespace allowed).
    pub fn parse(text: &str) -> Result<Json, JsonError> {
        let mut p = Parser {
            bytes: text.as_bytes(),
            pos: 0,
            depth: 0,
        };
        p.skip_ws();
        let v = p.value()?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(p.err("trailing characters after document"));
        }
        Ok(v)
    }
}

impl fmt::Display for Json {
    /// Compact (no whitespace) JSON serialization.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Json::Null => f.write_str("null"),
            Json::Bool(true) => f.write_str("true"),
            Json::Bool(false) => f.write_str("false"),
            Json::U(v) => write!(f, "{v}"),
            Json::I(v) => write!(f, "{v}"),
            Json::F(v) => {
                if v.is_finite() {
                    // Guarantee a parseable float even for integral values.
                    if v.fract() == 0.0 && v.abs() < 1e15 {
                        write!(f, "{v:.1}")
                    } else {
                        write!(f, "{v}")
                    }
                } else {
                    // JSON has no Infinity/NaN; degrade to null.
                    f.write_str("null")
                }
            }
            Json::Str(s) => write_escaped(f, s),
            Json::Arr(items) => {
                f.write_str("[")?;
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        f.write_str(",")?;
                    }
                    write!(f, "{item}")?;
                }
                f.write_str("]")
            }
            Json::Obj(members) => {
                f.write_str("{")?;
                for (i, (k, v)) in members.iter().enumerate() {
                    if i > 0 {
                        f.write_str(",")?;
                    }
                    write_escaped(f, k)?;
                    write!(f, ":{v}")?;
                }
                f.write_str("}")
            }
        }
    }
}

fn write_escaped(f: &mut fmt::Formatter<'_>, s: &str) -> fmt::Result {
    write_json_escaped(f, s)
}

/// Writes `s` as a quoted JSON string into any [`fmt::Write`] sink, with
/// exactly the escaping [`Json`]'s `Display` uses. Exported so streaming
/// serializers (e.g. the Chrome-trace exporter) share one escaping
/// implementation instead of reinventing it.
pub fn write_json_escaped<W: fmt::Write>(w: &mut W, s: &str) -> fmt::Result {
    w.write_str("\"")?;
    for c in s.chars() {
        match c {
            '"' => w.write_str("\\\"")?,
            '\\' => w.write_str("\\\\")?,
            '\n' => w.write_str("\\n")?,
            '\r' => w.write_str("\\r")?,
            '\t' => w.write_str("\\t")?,
            c if (c as u32) < 0x20 => write!(w, "\\u{:04x}", c as u32)?,
            c => w.write_char(c)?,
        }
    }
    w.write_str("\"")
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
    depth: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, message: impl Into<String>) -> JsonError {
        JsonError {
            kind: JsonErrorKind::Syntax,
            offset: self.pos,
            message: message.into(),
        }
    }

    /// Bumps the container nesting depth, refusing past
    /// [`MAX_JSON_DEPTH`]. Callers must pair with [`Self::leave`] on
    /// every success path (error paths abandon the parse entirely).
    fn enter(&mut self) -> Result<(), JsonError> {
        self.depth += 1;
        if self.depth > MAX_JSON_DEPTH {
            return Err(JsonError {
                kind: JsonErrorKind::TooDeep,
                offset: self.pos,
                message: format!("containers nested deeper than {MAX_JSON_DEPTH}"),
            });
        }
        Ok(())
    }

    fn leave(&mut self) {
        self.depth -= 1;
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), JsonError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(format!("expected '{}'", b as char)))
        }
    }

    fn literal(&mut self, word: &str, value: Json) -> Result<Json, JsonError> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(self.err(format!("expected '{word}'")))
        }
    }

    fn value(&mut self) -> Result<Json, JsonError> {
        match self.peek() {
            Some(b'n') => self.literal("null", Json::Null),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'"') => self.string().map(Json::Str),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(b'-' | b'0'..=b'9') => self.number(),
            Some(c) => Err(self.err(format!("unexpected character '{}'", c as char))),
            None => Err(self.err("unexpected end of input")),
        }
    }

    fn array(&mut self) -> Result<Json, JsonError> {
        self.expect(b'[')?;
        self.enter()?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            self.leave();
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    self.leave();
                    return Ok(Json::Arr(items));
                }
                _ => return Err(self.err("expected ',' or ']' in array")),
            }
        }
    }

    fn object(&mut self) -> Result<Json, JsonError> {
        self.expect(b'{')?;
        self.enter()?;
        let mut members = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            self.leave();
            return Ok(Json::Obj(members));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value()?;
            members.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    self.leave();
                    return Ok(Json::Obj(members));
                }
                _ => return Err(self.err("expected ',' or '}' in object")),
            }
        }
    }

    fn string(&mut self) -> Result<String, JsonError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            self.pos += 1;
                            let cp = self.hex4()?;
                            // Combine surrogate pairs; lone surrogates become
                            // the replacement character.
                            let c = if (0xD800..0xDC00).contains(&cp) {
                                if self.bytes[self.pos..].starts_with(b"\\u") {
                                    self.pos += 2;
                                    let lo = self.hex4()?;
                                    let combined = 0x10000
                                        + ((cp - 0xD800) << 10)
                                        + (lo.wrapping_sub(0xDC00) & 0x3FF);
                                    char::from_u32(combined).unwrap_or('\u{FFFD}')
                                } else {
                                    '\u{FFFD}'
                                }
                            } else {
                                char::from_u32(cp).unwrap_or('\u{FFFD}')
                            };
                            out.push(c);
                            continue;
                        }
                        _ => return Err(self.err("invalid escape sequence")),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 scalar (input is a &str, so slicing
                    // at char boundaries is safe).
                    let rest = &self.bytes[self.pos..];
                    let s = std::str::from_utf8(rest).map_err(|_| self.err("invalid UTF-8"))?;
                    let c = s.chars().next().expect("peeked nonempty");
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, JsonError> {
        let end = self.pos + 4;
        if end > self.bytes.len() {
            return Err(self.err("truncated \\u escape"));
        }
        let s = std::str::from_utf8(&self.bytes[self.pos..end])
            .map_err(|_| self.err("invalid \\u escape"))?;
        let v = u32::from_str_radix(s, 16).map_err(|_| self.err("invalid \\u escape"))?;
        self.pos = end;
        Ok(v)
    }

    fn number(&mut self) -> Result<Json, JsonError> {
        let start = self.pos;
        let negative = self.peek() == Some(b'-');
        if negative {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(c) = self.peek() {
            match c {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| self.err("invalid number"))?;
        if is_float {
            text.parse::<f64>()
                .map(Json::F)
                .map_err(|_| self.err(format!("invalid number '{text}'")))
        } else if negative {
            text.parse::<i64>()
                .map(Json::I)
                .map_err(|_| self.err(format!("invalid number '{text}'")))
        } else {
            text.parse::<u64>()
                .map(Json::U)
                .map_err(|_| self.err(format!("invalid number '{text}'")))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_scalars() {
        for text in ["null", "true", "false", "0", "18446744073709551615", "-42"] {
            let v = Json::parse(text).unwrap();
            assert_eq!(v.to_string(), text);
        }
        let v = Json::parse("1.5").unwrap();
        assert_eq!(v.as_f64(), Some(1.5));
    }

    #[test]
    fn u64_values_are_exact() {
        let big = u64::MAX - 1;
        let v = Json::from(big);
        assert_eq!(Json::parse(&v.to_string()).unwrap().as_u64(), Some(big));
    }

    #[test]
    fn as_u64_float_boundaries() {
        // 2^64 is exactly representable as f64 and is out of range: the
        // old `<= u64::MAX as f64` bound let it through and the cast
        // saturated to u64::MAX.
        let two_pow_64 = 18446744073709551616.0_f64;
        assert_eq!(Json::F(two_pow_64).as_u64(), None);
        assert_eq!(Json::F(two_pow_64 * 2.0).as_u64(), None);
        // The largest representable f64 below 2^64 (2^64 - 2048) converts
        // exactly.
        let below = 18446744073709549568.0_f64;
        assert!(below < two_pow_64);
        assert_eq!(Json::F(below).as_u64(), Some(18446744073709549568));
        // Ordinary integral floats, zero, and rejections stay as before.
        assert_eq!(Json::F(42.0).as_u64(), Some(42));
        assert_eq!(Json::F(0.0).as_u64(), Some(0));
        assert_eq!(Json::F(-1.0).as_u64(), None);
        assert_eq!(Json::F(1.5).as_u64(), None);
        assert_eq!(Json::F(f64::NAN).as_u64(), None);
        assert_eq!(Json::F(f64::INFINITY).as_u64(), None);
    }

    #[test]
    fn object_order_preserved() {
        let text = r#"{"z":1,"a":2,"m":[1,2,3]}"#;
        let v = Json::parse(text).unwrap();
        assert_eq!(v.to_string(), text);
        let keys: Vec<&str> = v
            .as_obj()
            .unwrap()
            .iter()
            .map(|(k, _)| k.as_str())
            .collect();
        assert_eq!(keys, ["z", "a", "m"]);
    }

    #[test]
    fn string_escapes_round_trip() {
        let s = "line\nquote\"back\\slash\ttab\u{1}unicode\u{1F600}";
        let v = Json::Str(s.to_string());
        let back = Json::parse(&v.to_string()).unwrap();
        assert_eq!(back.as_str(), Some(s));
    }

    #[test]
    fn surrogate_pair_parses() {
        let v = Json::parse(r#""😀""#).unwrap();
        assert_eq!(v.as_str(), Some("\u{1F600}"));
    }

    #[test]
    fn rejects_garbage() {
        for text in ["", "{", "[1,", "{\"a\" 1}", "tru", "1 2", "{\"a\":}"] {
            assert!(Json::parse(text).is_err(), "accepted {text:?}");
        }
    }

    #[test]
    fn depth_cap_boundary() {
        // Exactly MAX_JSON_DEPTH nested arrays parse; one more is a
        // structured TooDeep error, not a stack overflow.
        let ok = format!(
            "{}{}",
            "[".repeat(MAX_JSON_DEPTH),
            "]".repeat(MAX_JSON_DEPTH)
        );
        assert!(Json::parse(&ok).is_ok());
        let deep = format!(
            "{}{}",
            "[".repeat(MAX_JSON_DEPTH + 1),
            "]".repeat(MAX_JSON_DEPTH + 1)
        );
        let err = Json::parse(&deep).unwrap_err();
        assert_eq!(err.kind, JsonErrorKind::TooDeep);
        assert!(err.message.contains("128"), "{err}");
        // Same cap through objects, and for a hostile unclosed flood.
        let objs = "{\"a\":".repeat(MAX_JSON_DEPTH + 1);
        assert_eq!(Json::parse(&objs).unwrap_err().kind, JsonErrorKind::TooDeep);
        let flood = "[".repeat(1 << 20);
        assert_eq!(
            Json::parse(&flood).unwrap_err().kind,
            JsonErrorKind::TooDeep
        );
        // Ordinary syntax errors keep the Syntax kind.
        assert_eq!(Json::parse("[1,").unwrap_err().kind, JsonErrorKind::Syntax);
        // Siblings do not accumulate depth: a wide-but-shallow document
        // is fine.
        let wide = format!("[{}]", vec!["[1]"; 1000].join(","));
        assert!(Json::parse(&wide).is_ok());
    }

    #[test]
    fn canonicalize_sorts_keys_recursively() {
        let v = Json::parse(r#"{"z":{"b":1,"a":2},"a":[{"y":1,"x":2}],"m":3}"#).unwrap();
        assert_eq!(
            v.canonicalize().to_string(),
            r#"{"a":[{"x":2,"y":1}],"m":3,"z":{"a":2,"b":1}}"#
        );
        // Canonicalizing is idempotent and array order survives.
        let c = v.canonicalize();
        assert_eq!(c.canonicalize(), c);
        let arr = Json::parse("[3,1,2]").unwrap();
        assert_eq!(arr.canonicalize().to_string(), "[3,1,2]");
    }

    #[test]
    fn nested_lookup() {
        let v = Json::parse(r#"{"a":{"b":[10,20]}}"#).unwrap();
        let arr = v
            .get("a")
            .and_then(|a| a.get("b"))
            .and_then(Json::as_arr)
            .unwrap();
        assert_eq!(arr[1].as_u64(), Some(20));
    }
}

//! Simulated time.
//!
//! The paper's MLSim parameters (Figure 6) are given in microseconds with two
//! decimal digits (e.g. `put_msg_time 0.05`). We store time as an integer
//! number of **nanoseconds** so that arithmetic is exact and ordering is
//! total; `0.04 µs` becomes 40 ns with no floating-point drift across the
//! millions of events of a long simulation.

use core::fmt;
use core::iter::Sum;
use core::ops::{Add, AddAssign, Div, Mul, Sub, SubAssign};

/// A point in (or span of) simulated time, in nanoseconds.
///
/// `SimTime` is used both as an absolute timestamp and as a duration; the
/// paper's models never need the distinction and one type keeps the
/// arithmetic honest.
///
/// # Examples
///
/// ```
/// use aputil::SimTime;
///
/// let hop = SimTime::from_micros_f64(0.16);
/// let four_hops = hop * 4;
/// assert_eq!(four_hops.as_micros_f64(), 0.64);
/// ```
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimTime(u64);

impl SimTime {
    /// The zero instant, origin of every simulation.
    pub const ZERO: SimTime = SimTime(0);
    /// The largest representable time; used as an "infinitely late" sentinel.
    pub const MAX: SimTime = SimTime(u64::MAX);

    /// Creates a time from whole nanoseconds.
    #[inline]
    pub const fn from_nanos(ns: u64) -> Self {
        SimTime(ns)
    }

    /// Creates a time from whole microseconds.
    #[inline]
    pub const fn from_micros(us: u64) -> Self {
        SimTime(us * 1_000)
    }

    /// Creates a time from whole milliseconds.
    #[inline]
    pub const fn from_millis(ms: u64) -> Self {
        SimTime(ms * 1_000_000)
    }

    /// Creates a time from a fractional microsecond count, rounding to the
    /// nearest nanosecond. This is the natural constructor for Figure-6
    /// parameter values.
    ///
    /// # Panics
    ///
    /// Panics if `us` is negative, NaN, or too large to represent.
    #[inline]
    pub fn from_micros_f64(us: f64) -> Self {
        assert!(
            us.is_finite() && us >= 0.0,
            "SimTime::from_micros_f64: invalid duration {us}"
        );
        let ns = us * 1_000.0;
        assert!(ns <= u64::MAX as f64, "SimTime overflow: {us} µs");
        SimTime(ns.round() as u64)
    }

    /// Whole nanoseconds.
    #[inline]
    pub const fn as_nanos(self) -> u64 {
        self.0
    }

    /// Time as fractional microseconds (for reporting only).
    #[inline]
    pub fn as_micros_f64(self) -> f64 {
        self.0 as f64 / 1_000.0
    }

    /// Time as fractional milliseconds (for reporting only).
    #[inline]
    pub fn as_millis_f64(self) -> f64 {
        self.0 as f64 / 1_000_000.0
    }

    /// Time as fractional seconds (for reporting only).
    #[inline]
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1_000_000_000.0
    }

    /// Saturating subtraction: `self - other`, floored at zero.
    #[inline]
    pub fn saturating_sub(self, other: SimTime) -> SimTime {
        SimTime(self.0.saturating_sub(other.0))
    }

    /// Checked addition, `None` on overflow.
    #[inline]
    pub fn checked_add(self, other: SimTime) -> Option<SimTime> {
        self.0.checked_add(other.0).map(SimTime)
    }

    /// The later of two times.
    #[inline]
    pub fn max(self, other: SimTime) -> SimTime {
        SimTime(self.0.max(other.0))
    }

    /// The earlier of two times.
    #[inline]
    pub fn min(self, other: SimTime) -> SimTime {
        SimTime(self.0.min(other.0))
    }

    /// Multiplies a per-unit cost by a count with saturation, e.g.
    /// `per_byte * message_size`.
    #[inline]
    pub fn saturating_mul(self, n: u64) -> SimTime {
        SimTime(self.0.saturating_mul(n))
    }

    /// Checked multiplication, `None` on overflow — for cost arithmetic
    /// that must surface overflow instead of clamping sim time.
    #[inline]
    pub fn checked_mul(self, n: u64) -> Option<SimTime> {
        self.0.checked_mul(n).map(SimTime)
    }
}

impl Add for SimTime {
    type Output = SimTime;
    #[inline]
    fn add(self, rhs: SimTime) -> SimTime {
        SimTime(
            self.0
                .checked_add(rhs.0)
                .expect("SimTime addition overflowed"),
        )
    }
}

impl AddAssign for SimTime {
    #[inline]
    fn add_assign(&mut self, rhs: SimTime) {
        *self = *self + rhs;
    }
}

impl Sub for SimTime {
    type Output = SimTime;
    /// # Panics
    ///
    /// Panics if `rhs` is later than `self`; use
    /// [`SimTime::saturating_sub`] when that is expected.
    #[inline]
    fn sub(self, rhs: SimTime) -> SimTime {
        SimTime(
            self.0
                .checked_sub(rhs.0)
                .expect("SimTime subtraction underflowed"),
        )
    }
}

impl SubAssign for SimTime {
    #[inline]
    fn sub_assign(&mut self, rhs: SimTime) {
        *self = *self - rhs;
    }
}

impl Mul<u64> for SimTime {
    type Output = SimTime;
    #[inline]
    fn mul(self, rhs: u64) -> SimTime {
        SimTime(
            self.0
                .checked_mul(rhs)
                .expect("SimTime multiplication overflowed"),
        )
    }
}

impl Div<u64> for SimTime {
    type Output = SimTime;
    #[inline]
    fn div(self, rhs: u64) -> SimTime {
        SimTime(self.0 / rhs)
    }
}

impl Sum for SimTime {
    fn sum<I: Iterator<Item = SimTime>>(iter: I) -> SimTime {
        iter.fold(SimTime::ZERO, Add::add)
    }
}

impl fmt::Debug for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "SimTime({}ns)", self.0)
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.0 >= 1_000_000_000 {
            write!(f, "{:.3}s", self.as_secs_f64())
        } else if self.0 >= 1_000_000 {
            write!(f, "{:.3}ms", self.as_millis_f64())
        } else if self.0 >= 1_000 {
            write!(f, "{:.3}µs", self.as_micros_f64())
        } else {
            write!(f, "{}ns", self.0)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_is_default() {
        assert_eq!(SimTime::default(), SimTime::ZERO);
        assert_eq!(SimTime::ZERO.as_nanos(), 0);
    }

    #[test]
    fn micros_round_trip() {
        let t = SimTime::from_micros_f64(0.16);
        assert_eq!(t.as_nanos(), 160);
        assert!((t.as_micros_f64() - 0.16).abs() < 1e-12);
    }

    #[test]
    fn figure6_values_are_exact() {
        // Every parameter value printed in Figure 6 must be representable
        // exactly in nanoseconds.
        for us in [1.0, 0.16, 20.0, 15.0, 0.05, 0.04, 0.5, 0.125, 0.0] {
            let t = SimTime::from_micros_f64(us);
            assert_eq!(t.as_nanos() as f64, us * 1000.0);
        }
    }

    #[test]
    fn arithmetic() {
        let a = SimTime::from_nanos(100);
        let b = SimTime::from_nanos(40);
        assert_eq!((a + b).as_nanos(), 140);
        assert_eq!((a - b).as_nanos(), 60);
        assert_eq!((b * 3).as_nanos(), 120);
        assert_eq!((a / 2).as_nanos(), 50);
        assert_eq!(b.saturating_sub(a), SimTime::ZERO);
        assert_eq!(a.max(b), a);
        assert_eq!(a.min(b), b);
    }

    #[test]
    fn sum_over_iterator() {
        let total: SimTime = (1..=4).map(SimTime::from_nanos).sum();
        assert_eq!(total.as_nanos(), 10);
    }

    #[test]
    #[should_panic(expected = "underflowed")]
    fn subtraction_underflow_panics() {
        let _ = SimTime::from_nanos(1) - SimTime::from_nanos(2);
    }

    #[test]
    #[should_panic(expected = "invalid duration")]
    fn negative_micros_panics() {
        let _ = SimTime::from_micros_f64(-1.0);
    }

    #[test]
    fn display_scales() {
        assert_eq!(SimTime::from_nanos(5).to_string(), "5ns");
        assert_eq!(SimTime::from_nanos(1500).to_string(), "1.500µs");
        assert_eq!(SimTime::from_millis(2).to_string(), "2.000ms");
        assert_eq!(SimTime::from_millis(2500).to_string(), "2.500s");
    }

    #[test]
    fn saturating_mul_caps() {
        assert_eq!(SimTime::MAX.saturating_mul(2), SimTime::MAX);
        assert_eq!(SimTime::from_nanos(3).saturating_mul(4).as_nanos(), 12);
    }

    #[test]
    fn checked_add_detects_overflow() {
        assert_eq!(SimTime::MAX.checked_add(SimTime::from_nanos(1)), None);
        assert_eq!(
            SimTime::from_nanos(1).checked_add(SimTime::from_nanos(2)),
            Some(SimTime::from_nanos(3))
        );
    }
}

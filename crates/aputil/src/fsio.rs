//! Crash-safe file writes.
//!
//! `std::fs::write` truncates the destination before writing, so a crash
//! (or a full disk) mid-write leaves a short file that later *parses* —
//! as garbage. For checked-in baselines, versioned reports, and cache
//! entries that other runs trust byte-for-byte, that silent corruption is
//! worse than losing the write. [`write_atomic`] writes to a temporary
//! sibling in the same directory and renames it into place: readers see
//! either the old bytes or the complete new bytes, never a prefix.

use std::io::Write;
use std::path::Path;
use std::sync::atomic::{AtomicU64, Ordering};

/// Monotonic discriminator so concurrent writers in one process never
/// collide on the temp name (the pid alone distinguishes processes).
static TEMP_SEQ: AtomicU64 = AtomicU64::new(0);

/// Writes `contents` to `path` atomically: the bytes land in a unique
/// temporary file in `path`'s directory, are flushed, and are renamed
/// over `path`. On any error the temporary file is removed and `path` is
/// left untouched.
pub fn write_atomic(path: &Path, contents: &[u8]) -> std::io::Result<()> {
    let dir = path.parent().filter(|d| !d.as_os_str().is_empty());
    let file_name = path.file_name().ok_or_else(|| {
        std::io::Error::new(
            std::io::ErrorKind::InvalidInput,
            format!("not a writable file path: {}", path.display()),
        )
    })?;
    let tmp_name = format!(
        ".{}.tmp.{}.{}",
        file_name.to_string_lossy(),
        std::process::id(),
        TEMP_SEQ.fetch_add(1, Ordering::Relaxed),
    );
    let tmp = match dir {
        Some(d) => d.join(&tmp_name),
        None => std::path::PathBuf::from(&tmp_name),
    };
    let result = (|| {
        let mut f = std::fs::File::create(&tmp)?;
        f.write_all(contents)?;
        // Push the bytes to the device before the rename makes them
        // visible; a rename of an unflushed file can still surface a
        // truncated entry after power loss.
        f.sync_all()?;
        std::fs::rename(&tmp, path)
    })();
    if result.is_err() {
        let _ = std::fs::remove_file(&tmp);
    }
    result
}

#[cfg(test)]
mod tests {
    use super::*;

    fn temp_dir(tag: &str) -> std::path::PathBuf {
        let d = std::env::temp_dir().join(format!(
            "aputil_fsio_{tag}_{}_{}",
            std::process::id(),
            TEMP_SEQ.fetch_add(1, Ordering::Relaxed)
        ));
        std::fs::create_dir_all(&d).unwrap();
        d
    }

    #[test]
    fn writes_and_replaces() {
        let d = temp_dir("basic");
        let p = d.join("out.json");
        write_atomic(&p, b"first").unwrap();
        assert_eq!(std::fs::read(&p).unwrap(), b"first");
        write_atomic(&p, b"second, longer contents").unwrap();
        assert_eq!(std::fs::read(&p).unwrap(), b"second, longer contents");
        // No temp droppings left behind.
        let leftovers: Vec<_> = std::fs::read_dir(&d)
            .unwrap()
            .map(|e| e.unwrap().file_name())
            .filter(|n| n.to_string_lossy().contains(".tmp."))
            .collect();
        assert!(leftovers.is_empty(), "{leftovers:?}");
        std::fs::remove_dir_all(&d).unwrap();
    }

    #[test]
    fn failure_leaves_the_old_file_intact() {
        let d = temp_dir("fail");
        let p = d.join("keep.json");
        write_atomic(&p, b"precious").unwrap();
        // Writing *through* an existing file as if it were a directory
        // must fail without touching the original.
        let bad = p.join("child.json");
        assert!(write_atomic(&bad, b"x").is_err());
        assert_eq!(std::fs::read(&p).unwrap(), b"precious");
        std::fs::remove_dir_all(&d).unwrap();
    }

    #[test]
    fn bare_relative_filename_works() {
        let d = temp_dir("cwd");
        let p = d.join("bare.txt");
        // Exercise the no-parent branch via a path with an empty parent.
        write_atomic(Path::new(&p), b"ok").unwrap();
        assert_eq!(std::fs::read(&p).unwrap(), b"ok");
        std::fs::remove_dir_all(&d).unwrap();
    }
}

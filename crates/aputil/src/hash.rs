//! FNV-1a hashing for content addressing.
//!
//! The serving layer addresses cached simulation reports by the hash of
//! the canonicalized request document, and needs that key to be stable
//! across processes, hosts, and releases — which rules out
//! [`std::collections::hash_map::DefaultHasher`] (its seed is
//! deliberately unstable). FNV-1a over the canonical bytes is tiny,
//! fully specified, and already the checksum the fault-recovery envelope
//! layer uses, so keys computed by a client, the server, and a test all
//! agree forever.

/// FNV-1a 64-bit offset basis.
const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
/// FNV-1a 64-bit prime.
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

/// Hashes `bytes` with 64-bit FNV-1a.
pub fn fnv1a_64(bytes: &[u8]) -> u64 {
    let mut h = FNV_OFFSET;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(FNV_PRIME);
    }
    h
}

/// Renders a 64-bit key the way cache files and `X-Key` headers spell it:
/// 16 lowercase hex digits, zero-padded.
pub fn key_hex(key: u64) -> String {
    format!("{key:016x}")
}

/// Parses [`key_hex`]'s output back to the key. `None` on anything that
/// is not exactly 16 hex digits.
pub fn parse_key_hex(s: &str) -> Option<u64> {
    if s.len() != 16 {
        return None;
    }
    u64::from_str_radix(s, 16).ok()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matches_published_fnv1a_vectors() {
        // Reference vectors from the FNV specification.
        assert_eq!(fnv1a_64(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(fnv1a_64(b"a"), 0xaf63_dc4c_8601_ec8c);
        assert_eq!(fnv1a_64(b"foobar"), 0x85944171f73967e8);
    }

    #[test]
    fn key_hex_round_trips() {
        for k in [0u64, 1, 0xdead_beef, u64::MAX] {
            assert_eq!(parse_key_hex(&key_hex(k)), Some(k));
        }
        assert_eq!(key_hex(1).len(), 16);
        assert_eq!(parse_key_hex("xyz"), None);
        assert_eq!(parse_key_hex("00"), None);
    }
}

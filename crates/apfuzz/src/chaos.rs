//! Chaos referee: generated fuzz programs under deterministic fault
//! schedules.
//!
//! The contract it enforces is the fault layer's "never hang, never
//! corrupt" guarantee:
//!
//! * **Survivable schedule** (no fail-stop crash): the run must complete
//!   and every destination byte, flag count, DSM-window byte, and
//!   remote-load result must still match the fault-free oracle — retries,
//!   detours, and duplicate suppression have to be invisible to the
//!   program's memory.
//! * **Unsurvivable schedule** (contains a crash): the run must abort with
//!   a *structured* error — [`ApError::Fault`], [`ApError::BarrierAborted`],
//!   or [`ApError::CellLost`] — never a hang, an opaque panic, or an
//!   oracle miss. (If the program finishes before the crash fires, the
//!   skipped crash makes the run survivable after the fact; the referee
//!   then requires the full survivable contract.)
//! * **Determinism**: the identical (program, schedule) pair run twice
//!   must produce a byte-identical verdict — same [`aputil::FaultReport`]
//!   rendering on survival, same error rendering on abort.
//!
//! Hostile programs (which abort on their own even fault-free) are refereed
//! by the plain [`crate::run_program`] pipeline instead: layering injected
//! faults over an expected protocol error would make the abort ambiguous.

use crate::plan::Plan;
use crate::program::FuzzProgram;
use crate::runner::{self, CellOut};
use apcore::{run_with_faults, ApError, FaultSpec, MachineConfig};
use std::sync::Arc;

/// What a chaos run did, when it met the contract.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ChaosVerdict {
    /// The run completed with oracle-verified memory. Carries the
    /// canonical [`aputil::FaultReport::render`] text and the number of
    /// envelope retransmissions, so callers can assert byte-identical
    /// reproduction across runs, threads, or machines.
    Survived {
        /// `FaultReport::render()` of the attached report.
        report: String,
        /// Envelope retransmissions the recovery protocol performed.
        retries: u64,
    },
    /// The run aborted with the contained structured-error rendering.
    Aborted(String),
}

fn fail(category: &str, detail: String) -> String {
    format!("{category}: {detail}")
}

/// Runs `prog` under the fault schedule `spec`, twice, and checks the
/// chaos contract (see the module docs).
///
/// # Errors
///
/// A `"category: detail"` violation string, same shape as
/// [`crate::run_program`]: `chaos-unsurvived` (a survivable schedule
/// aborted), `chaos-error` (an unstructured abort), `chaos-report`
/// (missing or inconsistent fault report), `chaos-nondeterminism`
/// (the two runs differed), or any memory-oracle category.
pub fn run_chaos(prog: &FuzzProgram, spec: &FaultSpec) -> Result<ChaosVerdict, String> {
    let plan = Arc::new(Plan::build(prog));
    if plan.expect_error.is_some() {
        return runner::run_program(prog).map(|()| ChaosVerdict::Survived {
            report: String::new(),
            retries: 0,
        });
    }
    let first = run_once(&plan, prog.seed, spec)?;
    let second = run_once(&plan, prog.seed, spec)?;
    if first != second {
        return Err(fail(
            "chaos-nondeterminism",
            format!("identical (program, schedule) diverged:\n--- first\n{first:?}\n--- second\n{second:?}"),
        ));
    }
    Ok(first)
}

fn run_once(plan: &Arc<Plan>, seed: u64, spec: &FaultSpec) -> Result<ChaosVerdict, String> {
    let cfg = MachineConfig::new(plan.ncells).with_mem_size(plan.mem_size);
    let read_dsm = plan.expected.remote_stores > 0;
    let result = {
        let plan = Arc::clone(plan);
        let spec = spec.clone();
        run_with_faults(cfg, Some(&spec), move |cell| {
            runner::execute(&plan, seed, read_dsm, cell)
        })
    };
    match result {
        Ok(report) => {
            let completed: &[CellOut] = &report.outputs;
            runner::check_state(plan, seed, read_dsm, completed)?;
            let fr = report
                .fault
                .as_ref()
                .ok_or_else(|| fail("chaos-report", "faulted run carried no report".to_string()))?;
            if !fr.survived() {
                return Err(fail(
                    "chaos-report",
                    format!("completed run reports failure: {}", fr.cause),
                ));
            }
            Ok(ChaosVerdict::Survived {
                report: fr.render(),
                retries: fr.total_retries(),
            })
        }
        Err(err @ (ApError::Fault(_) | ApError::BarrierAborted { .. } | ApError::CellLost(_))) => {
            if spec.is_survivable() {
                Err(fail(
                    "chaos-unsurvived",
                    format!("survivable schedule aborted: {err}"),
                ))
            } else {
                Ok(ChaosVerdict::Aborted(err.to_string()))
            }
        }
        Err(other) => Err(fail(
            "chaos-error",
            format!("unstructured abort under faults: {other}"),
        )),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen_program;

    #[test]
    fn quiet_schedule_survives_with_no_retries() {
        let prog = gen_program(11, 4);
        match run_chaos(&prog, &FaultSpec::quiet()).unwrap() {
            ChaosVerdict::Survived { retries, .. } => assert_eq!(retries, 0),
            ChaosVerdict::Aborted(e) => panic!("quiet schedule aborted: {e}"),
        }
    }

    #[test]
    fn survivable_grid_passes_the_memory_oracle() {
        for seed in 0..3 {
            let prog = gen_program(seed, 4);
            for fault_seed in 0..3 {
                let spec = FaultSpec::random(fault_seed, 4, true);
                let v = run_chaos(&prog, &spec)
                    .unwrap_or_else(|e| panic!("seed {seed}/fault {fault_seed}: {e}"));
                assert!(
                    matches!(v, ChaosVerdict::Survived { .. }),
                    "seed {seed}/fault {fault_seed}: survivable schedule aborted: {v:?}"
                );
            }
        }
    }

    #[test]
    fn unsurvivable_schedules_abort_structurally_or_finish_first() {
        let mut aborted = 0;
        for fault_seed in 0..4 {
            let prog = gen_program(5, 4);
            let spec = FaultSpec::random(fault_seed, 4, false);
            match run_chaos(&prog, &spec).unwrap() {
                ChaosVerdict::Aborted(e) => {
                    aborted += 1;
                    assert!(
                        e.contains("fail-stop") || e.contains("barrier") || e.contains("lost"),
                        "abort is structured: {e}"
                    );
                }
                ChaosVerdict::Survived { .. } => {} // crash landed after the end
            }
        }
        assert!(aborted > 0, "at least one crash should land mid-run");
    }
}

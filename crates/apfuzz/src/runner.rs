//! Executes a fuzz program on the emulator and checks every invariant.
//!
//! One [`run_program`] call is the whole differential pipeline: build the
//! [`Plan`], run it as a real SPMD program on `apcore`, compare the final
//! memory/flag/DSM state against the independent [`crate::oracle`], check
//! the recorded trace's op counts against the plan, check the Figure-6
//! latency-segment sums, then replay the trace through `mlsim` and check
//! the divergence report's structure.
//!
//! Failures come back as `"category: detail"` strings; the category (the
//! text before the first `:`) is what the shrinker preserves while
//! minimizing, so a reduction cannot wander from one bug to a different
//! one.

use crate::oracle::{self, Expectation};
use crate::plan::{HostileKind, Op, Plan, DSM_SPAN, FLAG_SLOTS};
use crate::program::FuzzProgram;
use apcore::{run_with, MachineConfig, StrideSpec, VAddr};
use mlsim::{divergence, replay_observed, ModelParams};
use std::sync::Arc;

/// What one cell hands back for checking.
pub struct CellOut {
    region: Vec<u8>,
    flags: Vec<u32>,
    dsm: Vec<u8>,
    loads: Vec<Vec<u8>>,
}

fn fail(category: &str, detail: String) -> String {
    format!("{category}: {detail}")
}

/// The category prefix of a violation string.
pub fn category(violation: &str) -> &str {
    violation.split(':').next().unwrap_or(violation)
}

/// Re-runs `prog` with probe tracing and the event timeline on and
/// packages the recording as a binary `.evtrace` document — the corpus
/// twin of the RON reproducer, replayable with `repro replay` and
/// `repro remodel`. Returns `None` when the run aborts (expected-error
/// reproducers leave nothing replayable behind).
pub fn program_evtrace(prog: &FuzzProgram) -> Option<Vec<u8>> {
    let plan = Arc::new(Plan::build(prog));
    let seed = prog.seed;
    let cfg = MachineConfig::new(plan.ncells)
        .with_mem_size(plan.mem_size)
        .with_timeline(true);
    let read_dsm = plan.expected.remote_stores > 0;
    let report = {
        let plan = Arc::clone(&plan);
        run_with(cfg, move |cell| execute(&plan, seed, read_dsm, cell))
    }
    .ok()?;
    let events = report.timeline.events.len() as u64;
    let doc = aptrace::EvTrace {
        header: aptrace::EvHeader::new(plan.ncells, "apfuzz", &format!("seed{seed}")),
        streams: vec![aptrace::EvStream {
            label: "emulator".to_string(),
            events: report.timeline.events,
        }],
        ops: Some(report.trace),
        counters: None,
        fault_ron: None,
        summary: aptrace::EvSummary {
            total_ns: report.total_time.as_nanos(),
            events,
        },
    };
    Some(aptrace::evtrace::encode(&doc))
}

/// Runs `prog` end to end and checks every invariant.
///
/// # Errors
///
/// A `"category: detail"` violation description.
pub fn run_program(prog: &FuzzProgram) -> Result<(), String> {
    let plan = Arc::new(Plan::build(prog));
    let seed = prog.seed;
    let cfg = MachineConfig::new(plan.ncells)
        .with_mem_size(plan.mem_size)
        .with_timeline(true);
    let read_dsm = plan.expected.remote_stores > 0;
    let result = {
        let plan = Arc::clone(&plan);
        run_with(cfg, move |cell| execute(&plan, seed, read_dsm, cell))
    };
    match (&plan.expect_error, result) {
        (Some(want), Err(e)) => {
            let got = e.to_string();
            if got.contains(want.as_str()) {
                Ok(())
            } else {
                Err(fail(
                    "wrong-error",
                    format!("expected error containing `{want}`, got `{got}`"),
                ))
            }
        }
        (Some(want), Ok(_)) => Err(fail(
            "missing-error",
            format!("hostile program completed; expected error containing `{want}`"),
        )),
        (None, Err(e)) => Err(fail("run-error", e.to_string())),
        (None, Ok(report)) => check(&plan, seed, read_dsm, &report),
    }
}

/// The SPMD program: every cell executes the same plan, phase by phase.
/// The phase order per round — pre-writes, non-blocking issues, bcasts,
/// sends, recvs, remote loads, work, fence, flag waits, barrier — is what
/// makes generated programs deadlock-free: no blocking operation ever
/// precedes the non-blocking issues it depends on, and the blocking
/// operations appear in the same relative order on every cell.
pub(crate) fn execute(plan: &Plan, seed: u64, read_dsm: bool, cell: &mut apcore::Cell) -> CellOut {
    let me = cell.id() as u32;
    let region_b = cell.alloc_bytes(plan.region);
    let flags_b = cell.alloc_bytes(4 * FLAG_SLOTS as u64);
    let flag_at = |slot: usize| flags_b + 4 * slot as u64;
    cell.write_slice(region_b, &oracle::pattern_words(seed, me, plan.src_half));
    cell.barrier();
    let mut loads = Vec::new();
    for round in &plan.rounds {
        // Broadcast roots stage their payloads (zero-cost data plane).
        for op in &round.ops {
            if let Op::Bcast {
                root,
                off,
                bytes,
                pattern,
            } = op
            {
                if *root == me {
                    let words: Vec<u64> = oracle::stream_bytes(*pattern, *bytes)
                        .chunks(8)
                        .map(|c| u64::from_le_bytes(c.try_into().expect("multiple of 8")))
                        .collect();
                    cell.write_slice(region_b + *off, &words);
                }
            }
        }
        // Non-blocking issues.
        for op in &round.ops {
            match op {
                Op::Put {
                    src,
                    dst,
                    src_off,
                    dst_off,
                    contig,
                    send,
                    recv,
                    flag_send,
                    flag_recv,
                    ack,
                } if *src == me => {
                    let sf = flag_send.map_or(VAddr::NULL, flag_at);
                    let rf = flag_recv.map_or(VAddr::NULL, flag_at);
                    let (raddr, laddr) = (region_b + *dst_off, region_b + *src_off);
                    match contig {
                        Some(bytes) => {
                            cell.put(*dst as usize, raddr, laddr, *bytes, sf, rf, *ack);
                        }
                        None => {
                            cell.put_stride(
                                *dst as usize,
                                raddr,
                                laddr,
                                *send,
                                *recv,
                                sf,
                                rf,
                                *ack,
                            );
                        }
                    }
                }
                Op::Get {
                    owner,
                    reader,
                    src_off,
                    dst_off,
                    contig,
                    send,
                    recv,
                    flag_send,
                    flag_recv,
                } if *reader == me => {
                    let sf = flag_send.map_or(VAddr::NULL, flag_at);
                    let rf = flag_recv.map_or(VAddr::NULL, flag_at);
                    let (raddr, laddr) = (region_b + *src_off, region_b + *dst_off);
                    match contig {
                        Some(bytes) => cell.get(*owner as usize, raddr, laddr, *bytes, sf, rf),
                        None => {
                            cell.get_stride(*owner as usize, raddr, laddr, *send, *recv, sf, rf);
                        }
                    }
                }
                Op::RStore {
                    src,
                    owner,
                    off,
                    bytes,
                    pattern,
                } if *src == me => {
                    cell.remote_store(
                        *owner as usize,
                        *off,
                        &oracle::stream_bytes(*pattern, *bytes),
                    );
                }
                Op::Hostile { src, dst, kind } if *src == me => match kind {
                    HostileKind::Empty => {
                        cell.put(
                            *dst as usize,
                            region_b,
                            region_b,
                            0,
                            VAddr::NULL,
                            VAddr::NULL,
                            false,
                        );
                    }
                    HostileKind::Overlap => {
                        let bad = StrideSpec {
                            item_size: 8,
                            count: 2,
                            skip: 4,
                        };
                        cell.put_stride(
                            *dst as usize,
                            region_b,
                            region_b,
                            bad,
                            bad,
                            VAddr::NULL,
                            VAddr::NULL,
                            false,
                        );
                    }
                    HostileKind::Mismatch => {
                        cell.get_stride(
                            *dst as usize,
                            region_b,
                            region_b,
                            StrideSpec::contiguous(8),
                            StrideSpec::contiguous(16),
                            VAddr::NULL,
                            VAddr::NULL,
                        );
                    }
                },
                _ => {}
            }
        }
        // Collectives: every cell participates, in plan order.
        for op in &round.ops {
            if let Op::Bcast {
                root, off, bytes, ..
            } = op
            {
                cell.bcast(*root as usize, region_b + *off, *bytes);
            }
        }
        // Ring sends, then the matching receives.
        for op in &round.ops {
            if let Op::Send {
                src,
                src_off,
                dst,
                bytes,
                ..
            } = op
            {
                if *src == me {
                    cell.send(*dst as usize, region_b + *src_off, *bytes);
                }
            }
        }
        for op in &round.ops {
            if let Op::Send {
                src,
                dst,
                dst_off,
                bytes,
                ..
            } = op
            {
                if *dst == me {
                    cell.recv(*src as usize, region_b + *dst_off, *bytes);
                }
            }
        }
        // Blocking DSM loads.
        for op in &round.ops {
            if let Op::RLoad {
                reader,
                owner,
                off,
                bytes,
            } = op
            {
                if *reader == me {
                    loads.push(cell.remote_load(*owner as usize, *off, *bytes));
                }
            }
        }
        for op in &round.ops {
            if let Op::Work { cell: c, flops } = op {
                if *c == me {
                    cell.work(*flops);
                }
            }
        }
        if round.fence[me as usize] {
            cell.remote_fence();
        }
        for &(slot, target) in &round.waits[me as usize] {
            cell.wait_flag(flag_at(slot), target);
        }
        if round.wait_acks[me as usize] {
            cell.wait_acks();
        }
        cell.barrier();
    }
    let words = cell.read_slice::<u64>(region_b, (plan.region / 8) as usize);
    let region = words.iter().flat_map(|w| w.to_le_bytes()).collect();
    let flags = cell.read_slice::<u32>(flags_b, FLAG_SLOTS);
    let dsm = if read_dsm {
        cell.remote_load(me as usize, 0, DSM_SPAN)
    } else {
        Vec::new()
    };
    CellOut {
        region,
        flags,
        dsm,
        loads,
    }
}

fn first_diff(a: &[u8], b: &[u8]) -> Option<usize> {
    if a.len() != b.len() {
        return Some(a.len().min(b.len()));
    }
    a.iter().zip(b).position(|(x, y)| x != y)
}

/// Checks the final machine state — destination bytes, flag counts, DSM
/// window, remote-load results — of every cell against the independent
/// oracle. This is the fault-invariant half of [`check`]: the chaos
/// referee reuses it verbatim, because retries, detours, and duplicate
/// suppression must be invisible to the program's memory.
pub(crate) fn check_state(
    plan: &Plan,
    seed: u64,
    read_dsm: bool,
    outputs: &[CellOut],
) -> Result<(), String> {
    let want: Expectation = oracle::expectation(plan, seed);
    // 1. Every destination byte matches the oracle.
    for (c, out) in outputs.iter().enumerate() {
        if let Some(at) = first_diff(&out.region, &want.region[c]) {
            let (got, exp) = (out.region.get(at).copied(), want.region[c].get(at).copied());
            return Err(fail(
                "region-mismatch",
                format!("cell {c} byte {at}: machine {got:?}, oracle {exp:?}"),
            ));
        }
        // 2. Every flag's final count equals the number of transfers
        //    that targeted it.
        if out.flags.as_slice() != want.flags[c].as_slice() {
            return Err(fail(
                "flag-mismatch",
                format!(
                    "cell {c}: machine {:?}, oracle {:?}",
                    out.flags, want.flags[c]
                ),
            ));
        }
        if read_dsm {
            if let Some(at) = first_diff(&out.dsm, &want.dsm[c]) {
                return Err(fail(
                    "dsm-mismatch",
                    format!("cell {c} shared-window byte {at} differs"),
                ));
            }
        }
        if out.loads != want.loads[c] {
            return Err(fail(
                "load-mismatch",
                format!("cell {c}: remote-load results differ from oracle"),
            ));
        }
    }
    Ok(())
}

#[allow(clippy::too_many_lines)]
fn check(
    plan: &Plan,
    seed: u64,
    read_dsm: bool,
    report: &apcore::RunReport<CellOut>,
) -> Result<(), String> {
    let n = plan.ncells as usize;
    check_state(plan, seed, read_dsm, &report.outputs)?;
    // 3. Barrier epochs agree with the round structure.
    let rounds = plan.rounds.len() as u64;
    if report.barriers != rounds + 1 {
        return Err(fail(
            "barrier-epochs",
            format!(
                "S-net saw {} epochs, plan has {}",
                report.barriers,
                rounds + 1
            ),
        ));
    }
    // 4. The recorded trace contains exactly the planned operations.
    let got = report.trace.op_counts();
    let e = &plan.expected;
    let extra_loads = if read_dsm { n as u64 } else { 0 };
    let expect = [
        ("puts", got.puts, e.puts),
        ("gets", got.gets, e.gets),
        ("ack_probes", got.ack_probes, e.ack_probes),
        ("sends", got.sends, e.sends),
        ("recvs", got.recvs, e.recvs),
        ("bcasts", got.bcasts, e.bcast_calls),
        ("works", got.works, e.works),
        ("flag_waits", got.flag_waits, e.flag_waits),
        ("barriers", got.barriers, e.barrier_calls),
        ("remote_stores", got.remote_stores, e.remote_stores),
        (
            "remote_loads",
            got.remote_loads,
            e.remote_loads + extra_loads,
        ),
        ("fences", got.fences, e.fences),
        ("rts", got.rts, 0),
        ("reg_stores", got.reg_stores, 0),
        ("reg_loads", got.reg_loads, 0),
        ("marks", got.marks, 0),
    ];
    for (name, got, want) in expect {
        if got != want {
            return Err(fail(
                "op-count",
                format!("trace has {got} {name}, plan expects {want}"),
            ));
        }
    }
    // 5. Per-transfer latency attribution: one record per transfer, and
    //    the segments sum exactly to end-to-end.
    for (kind, hists, count) in [
        ("put", &report.counters.put_lat, e.puts),
        ("get", &report.counters.get_lat, e.gets + e.ack_probes),
    ] {
        if hists.total.count() != count {
            return Err(fail(
                "latency-count",
                format!(
                    "{kind}_lat records {} transfers, plan expects {count}",
                    hists.total.count()
                ),
            ));
        }
        let segs = hists.issue.sum()
            + hists.queue.sum()
            + hists.dma.sum()
            + hists.net.sum()
            + hists.delivery.sum()
            + hists.flag.sum();
        if segs != hists.total.sum() {
            return Err(fail(
                "latency-sum",
                format!(
                    "{kind}_lat segments sum to {segs} ns but totals sum to {} ns",
                    hists.total.sum()
                ),
            ));
        }
    }
    // 6. The trace replays cleanly through MLSim and the divergence
    //    report is structurally sane.
    let replayed = replay_observed(&report.trace, &ModelParams::ap1000_plus(), true)
        .map_err(|err| fail("replay", format!("{err:?}")))?;
    let div = divergence(
        &report.timeline,
        &replayed.timeline,
        &report.counters,
        &replayed.counters,
    );
    div.check().map_err(|err| fail("divergence", err))?;
    Ok(())
}

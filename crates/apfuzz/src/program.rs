//! The fuzzer's program model.
//!
//! A [`FuzzProgram`] is a machine-size plus a list of *rounds*, each a
//! list of [`Action`]s. Every action is self-contained (explicit cells,
//! sizes, offsets), so removing actions during shrinking leaves the rest
//! meaningful; everything position-dependent (destination slots, flag
//! targets, waits, barriers) is synthesized by the [`crate::plan`] module
//! when the program is executed, which keeps every shrunk candidate
//! deadlock-free *by construction*.

/// How a PUT/GET describes its two sides.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum StrideMode {
    /// Both sides contiguous — issued through `Cell::put`/`Cell::get`,
    /// which chunk at the 4 MB DMA limit.
    Contig,
    /// Both sides use the same `(item, count, skip)` stride.
    Stride,
    /// Sender strided, receiver contiguous (Figure-3 re-blocking).
    SendStride,
    /// Sender contiguous, receiver strided.
    RecvStride,
}

/// One operation of one round. Cell indices are taken modulo the machine
/// size and byte offsets modulo the relevant window, so any field values
/// describe *some* valid program.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Action {
    /// One-sided write from `src`'s pattern area into a fresh slot on
    /// `dst`. `flag_send`/`flag_recv` pick a completion-flag slot
    /// (negative = no flag).
    Put {
        src: u32,
        dst: u32,
        src_off: u32,
        item: u32,
        count: u32,
        extra: u32,
        mode: StrideMode,
        flag_send: i8,
        flag_recv: i8,
        ack: bool,
    },
    /// One-sided read by `reader` from `owner`'s pattern area.
    Get {
        owner: u32,
        reader: u32,
        src_off: u32,
        item: u32,
        count: u32,
        extra: u32,
        mode: StrideMode,
        flag_send: i8,
        flag_recv: i8,
    },
    /// Blocking ring-buffer SEND matched by a RECEIVE on `dst` in the
    /// same round.
    Send {
        src: u32,
        dst: u32,
        src_off: u32,
        bytes: u32,
    },
    /// Collective B-net broadcast of a seeded payload from `root`.
    Bcast { root: u32, bytes: u32 },
    /// DSM remote store of `bytes` seeded bytes into `owner`'s shared
    /// window (offset allocated by the plan), fenced at round end.
    RStore {
        src: u32,
        owner: u32,
        bytes: u32,
        pattern: u32,
    },
    /// Blocking DSM remote load from `owner`'s shared window. Suppressed
    /// by the plan when it would overlap a same-round store (the outcome
    /// of that race is timing-dependent by design).
    RLoad {
        reader: u32,
        owner: u32,
        off: u32,
        bytes: u32,
    },
    /// Pure computation on one cell.
    Work { cell: u32, flops: u32 },
    /// Hostile: a zero-length PUT, which issue-time validation must
    /// reject with a structured error.
    BadPutEmpty { src: u32, dst: u32 },
    /// Hostile: a hand-built overlapping stride (`skip < item_size`),
    /// which validation must reject.
    BadPutOverlap { src: u32, dst: u32 },
    /// Hostile: send/recv strides describing different byte totals.
    BadGetMismatch { reader: u32, owner: u32 },
}

impl Action {
    /// `true` for the hostile actions that issue-time validation must
    /// reject (the whole run errors out).
    pub fn is_hostile(&self) -> bool {
        matches!(
            self,
            Action::BadPutEmpty { .. }
                | Action::BadPutOverlap { .. }
                | Action::BadGetMismatch { .. }
        )
    }
}

/// A complete fuzz case.
#[derive(Clone, PartialEq, Debug)]
pub struct FuzzProgram {
    /// Seed that generated this program; also seeds the memory patterns.
    pub seed: u64,
    /// Machine size.
    pub ncells: u32,
    /// Bytes of fuzzed memory per cell: first half read-only pattern
    /// area, second half destination slots.
    pub region: u64,
    /// Expected failure: `Some(substring)` means the run must abort with
    /// an error whose rendering contains the substring; `None` means the
    /// run must complete and satisfy every invariant.
    pub expect_error: Option<String>,
    /// The rounds, each separated by synthesized waits and a barrier.
    pub rounds: Vec<Vec<Action>>,
}

impl FuzzProgram {
    /// Total number of actions across all rounds.
    pub fn total_actions(&self) -> usize {
        self.rounds.iter().map(Vec::len).sum()
    }

    /// `true` if any action is hostile (the program expects rejection).
    pub fn is_hostile(&self) -> bool {
        self.rounds.iter().flatten().any(Action::is_hostile)
    }
}

//! Standalone RON-style reproducers.
//!
//! Every shrunk failure is emitted as a small, human-editable text file
//! (`tests/corpus/*.ron` at the repository root) that [`from_ron`] parses
//! back into the exact [`FuzzProgram`]. Hand-rolled on purpose: the
//! workspace is offline, and the subset needed here — nested structs,
//! enums with named fields, integer/bool/string literals, `//` comments,
//! trailing commas — is small.

use crate::program::{Action, FuzzProgram, StrideMode};
use std::fmt::Write as _;

/// Renders a program as RON text.
pub fn to_ron(p: &FuzzProgram) -> String {
    let mut s = String::new();
    s.push_str("(\n");
    let _ = writeln!(s, "    seed: {},", p.seed);
    let _ = writeln!(s, "    ncells: {},", p.ncells);
    let _ = writeln!(s, "    region: {},", p.region);
    match &p.expect_error {
        None => s.push_str("    expect_error: None,\n"),
        Some(e) => {
            let _ = writeln!(s, "    expect_error: Some(\"{e}\"),");
        }
    }
    s.push_str("    rounds: [\n");
    for round in &p.rounds {
        s.push_str("        [\n");
        for a in round {
            let _ = writeln!(s, "            {},", action_ron(a));
        }
        s.push_str("        ],\n");
    }
    s.push_str("    ],\n)\n");
    s
}

fn action_ron(a: &Action) -> String {
    match a {
        Action::Put {
            src,
            dst,
            src_off,
            item,
            count,
            extra,
            mode,
            flag_send,
            flag_recv,
            ack,
        } => format!(
            "Put(src: {src}, dst: {dst}, src_off: {src_off}, item: {item}, count: {count}, \
             extra: {extra}, mode: {mode:?}, flag_send: {flag_send}, flag_recv: {flag_recv}, \
             ack: {ack})"
        ),
        Action::Get {
            owner,
            reader,
            src_off,
            item,
            count,
            extra,
            mode,
            flag_send,
            flag_recv,
        } => format!(
            "Get(owner: {owner}, reader: {reader}, src_off: {src_off}, item: {item}, \
             count: {count}, extra: {extra}, mode: {mode:?}, flag_send: {flag_send}, \
             flag_recv: {flag_recv})"
        ),
        Action::Send {
            src,
            dst,
            src_off,
            bytes,
        } => format!("Send(src: {src}, dst: {dst}, src_off: {src_off}, bytes: {bytes})"),
        Action::Bcast { root, bytes } => format!("Bcast(root: {root}, bytes: {bytes})"),
        Action::RStore {
            src,
            owner,
            bytes,
            pattern,
        } => format!("RStore(src: {src}, owner: {owner}, bytes: {bytes}, pattern: {pattern})"),
        Action::RLoad {
            reader,
            owner,
            off,
            bytes,
        } => format!("RLoad(reader: {reader}, owner: {owner}, off: {off}, bytes: {bytes})"),
        Action::Work { cell, flops } => format!("Work(cell: {cell}, flops: {flops})"),
        Action::BadPutEmpty { src, dst } => format!("BadPutEmpty(src: {src}, dst: {dst})"),
        Action::BadPutOverlap { src, dst } => format!("BadPutOverlap(src: {src}, dst: {dst})"),
        Action::BadGetMismatch { reader, owner } => {
            format!("BadGetMismatch(reader: {reader}, owner: {owner})")
        }
    }
}

/// Parses RON text produced by [`to_ron`] (or hand-written in the same
/// dialect) back into a program.
///
/// # Errors
///
/// A message with the byte offset of the first syntax problem.
pub fn from_ron(text: &str) -> Result<FuzzProgram, String> {
    let mut p = Parser {
        s: text.as_bytes(),
        i: 0,
    };
    let prog = p.program()?;
    p.ws();
    if p.i != p.s.len() {
        return Err(p.err("trailing input"));
    }
    Ok(prog)
}

struct Parser<'a> {
    s: &'a [u8],
    i: usize,
}

/// One parsed `name: value` field.
enum Val {
    Int(i64),
    Word(String),
}

impl Parser<'_> {
    fn err(&self, what: &str) -> String {
        format!("ron parse error at byte {}: {what}", self.i)
    }

    fn ws(&mut self) {
        loop {
            while self.i < self.s.len() && self.s[self.i].is_ascii_whitespace() {
                self.i += 1;
            }
            if self.s[self.i..].starts_with(b"//") {
                while self.i < self.s.len() && self.s[self.i] != b'\n' {
                    self.i += 1;
                }
            } else {
                return;
            }
        }
    }

    fn eat(&mut self, c: u8) -> Result<(), String> {
        self.ws();
        if self.i < self.s.len() && self.s[self.i] == c {
            self.i += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected `{}`", c as char)))
        }
    }

    fn peek(&mut self, c: u8) -> bool {
        self.ws();
        self.i < self.s.len() && self.s[self.i] == c
    }

    fn word(&mut self) -> Result<String, String> {
        self.ws();
        let start = self.i;
        while self.i < self.s.len()
            && (self.s[self.i].is_ascii_alphanumeric() || self.s[self.i] == b'_')
        {
            self.i += 1;
        }
        if self.i == start {
            return Err(self.err("expected identifier"));
        }
        Ok(String::from_utf8_lossy(&self.s[start..self.i]).into_owned())
    }

    fn int(&mut self) -> Result<i64, String> {
        self.ws();
        let start = self.i;
        if self.i < self.s.len() && self.s[self.i] == b'-' {
            self.i += 1;
        }
        while self.i < self.s.len() && self.s[self.i].is_ascii_digit() {
            self.i += 1;
        }
        std::str::from_utf8(&self.s[start..self.i])
            .ok()
            .and_then(|t| t.parse().ok())
            .ok_or_else(|| self.err("expected integer"))
    }

    fn string(&mut self) -> Result<String, String> {
        self.eat(b'"')?;
        let start = self.i;
        while self.i < self.s.len() && self.s[self.i] != b'"' {
            self.i += 1;
        }
        let out = String::from_utf8_lossy(&self.s[start..self.i]).into_owned();
        self.eat(b'"')?;
        Ok(out)
    }

    /// `name: value` pairs inside `( ... )`, any order, trailing comma ok.
    fn fields(&mut self) -> Result<Vec<(String, Val)>, String> {
        self.eat(b'(')?;
        let mut out = Vec::new();
        while !self.peek(b')') {
            let name = self.word()?;
            self.eat(b':')?;
            self.ws();
            let val = if self.i < self.s.len()
                && (self.s[self.i] == b'-' || self.s[self.i].is_ascii_digit())
            {
                Val::Int(self.int()?)
            } else {
                Val::Word(self.word()?)
            };
            out.push((name, val));
            if self.peek(b',') {
                self.i += 1;
            }
        }
        self.eat(b')')?;
        Ok(out)
    }

    fn program(&mut self) -> Result<FuzzProgram, String> {
        self.eat(b'(')?;
        let (mut seed, mut ncells, mut region) = (None, None, None);
        let mut expect_error = None;
        let mut rounds = None;
        while !self.peek(b')') {
            let name = self.word()?;
            self.eat(b':')?;
            match name.as_str() {
                "seed" => seed = Some(self.int()? as u64),
                "ncells" => ncells = Some(self.int()? as u32),
                "region" => region = Some(self.int()? as u64),
                "expect_error" => match self.word()?.as_str() {
                    "None" => {}
                    "Some" => {
                        self.eat(b'(')?;
                        expect_error = Some(self.string()?);
                        self.eat(b')')?;
                    }
                    w => return Err(self.err(&format!("expected None/Some, got `{w}`"))),
                },
                "rounds" => rounds = Some(self.rounds()?),
                other => return Err(self.err(&format!("unknown field `{other}`"))),
            }
            if self.peek(b',') {
                self.i += 1;
            }
        }
        self.eat(b')')?;
        Ok(FuzzProgram {
            seed: seed.ok_or_else(|| self.err("missing seed"))?,
            ncells: ncells.ok_or_else(|| self.err("missing ncells"))?,
            region: region.ok_or_else(|| self.err("missing region"))?,
            expect_error,
            rounds: rounds.ok_or_else(|| self.err("missing rounds"))?,
        })
    }

    fn rounds(&mut self) -> Result<Vec<Vec<Action>>, String> {
        self.eat(b'[')?;
        let mut rounds = Vec::new();
        while !self.peek(b']') {
            self.eat(b'[')?;
            let mut round = Vec::new();
            while !self.peek(b']') {
                round.push(self.action()?);
                if self.peek(b',') {
                    self.i += 1;
                }
            }
            self.eat(b']')?;
            rounds.push(round);
            if self.peek(b',') {
                self.i += 1;
            }
        }
        self.eat(b']')?;
        Ok(rounds)
    }

    fn action(&mut self) -> Result<Action, String> {
        let variant = self.word()?;
        let at = self.i;
        let fields = self.fields()?;
        let get = |name: &str| -> Result<i64, String> {
            fields
                .iter()
                .find(|(n, _)| n == name)
                .and_then(|(_, v)| match v {
                    Val::Int(i) => Some(*i),
                    Val::Word(_) => None,
                })
                .ok_or(format!(
                    "ron parse error at byte {at}: {variant} needs integer field `{name}`"
                ))
        };
        let get_word = |name: &str| -> Result<&str, String> {
            fields
                .iter()
                .find(|(n, _)| n == name)
                .and_then(|(_, v)| match v {
                    Val::Word(w) => Some(w.as_str()),
                    Val::Int(_) => None,
                })
                .ok_or(format!(
                    "ron parse error at byte {at}: {variant} needs word field `{name}`"
                ))
        };
        let mode = |w: &str| -> Result<StrideMode, String> {
            match w {
                "Contig" => Ok(StrideMode::Contig),
                "Stride" => Ok(StrideMode::Stride),
                "SendStride" => Ok(StrideMode::SendStride),
                "RecvStride" => Ok(StrideMode::RecvStride),
                other => Err(format!("unknown stride mode `{other}`")),
            }
        };
        Ok(match variant.as_str() {
            "Put" => Action::Put {
                src: get("src")? as u32,
                dst: get("dst")? as u32,
                src_off: get("src_off")? as u32,
                item: get("item")? as u32,
                count: get("count")? as u32,
                extra: get("extra")? as u32,
                mode: mode(get_word("mode")?)?,
                flag_send: get("flag_send")? as i8,
                flag_recv: get("flag_recv")? as i8,
                ack: get_word("ack")? == "true",
            },
            "Get" => Action::Get {
                owner: get("owner")? as u32,
                reader: get("reader")? as u32,
                src_off: get("src_off")? as u32,
                item: get("item")? as u32,
                count: get("count")? as u32,
                extra: get("extra")? as u32,
                mode: mode(get_word("mode")?)?,
                flag_send: get("flag_send")? as i8,
                flag_recv: get("flag_recv")? as i8,
            },
            "Send" => Action::Send {
                src: get("src")? as u32,
                dst: get("dst")? as u32,
                src_off: get("src_off")? as u32,
                bytes: get("bytes")? as u32,
            },
            "Bcast" => Action::Bcast {
                root: get("root")? as u32,
                bytes: get("bytes")? as u32,
            },
            "RStore" => Action::RStore {
                src: get("src")? as u32,
                owner: get("owner")? as u32,
                bytes: get("bytes")? as u32,
                pattern: get("pattern")? as u32,
            },
            "RLoad" => Action::RLoad {
                reader: get("reader")? as u32,
                owner: get("owner")? as u32,
                off: get("off")? as u32,
                bytes: get("bytes")? as u32,
            },
            "Work" => Action::Work {
                cell: get("cell")? as u32,
                flops: get("flops")? as u32,
            },
            "BadPutEmpty" => Action::BadPutEmpty {
                src: get("src")? as u32,
                dst: get("dst")? as u32,
            },
            "BadPutOverlap" => Action::BadPutOverlap {
                src: get("src")? as u32,
                dst: get("dst")? as u32,
            },
            "BadGetMismatch" => Action::BadGetMismatch {
                reader: get("reader")? as u32,
                owner: get("owner")? as u32,
            },
            other => return Err(format!("unknown action `{other}`")),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generate::gen_program;

    #[test]
    fn round_trips_generated_programs() {
        for seed in 0..50 {
            let p = gen_program(seed, 7);
            let text = to_ron(&p);
            let back = from_ron(&text).unwrap_or_else(|e| panic!("seed {seed}: {e}\n{text}"));
            assert_eq!(p, back, "seed {seed} round-trip\n{text}");
        }
    }

    #[test]
    fn parses_hand_written_dialect() {
        let text = r#"
            // a comment
            (
                seed: 7, ncells: 3, region: 4096,
                expect_error: Some("overlap"),
                rounds: [[
                    BadPutOverlap(dst: 1, src: 0),
                    Work(cell: 2, flops: 10),
                ]],
            )
        "#;
        let p = from_ron(text).unwrap();
        assert_eq!(p.ncells, 3);
        assert_eq!(p.expect_error.as_deref(), Some("overlap"));
        assert_eq!(p.total_actions(), 2);
    }

    #[test]
    fn reports_errors_with_position() {
        let err = from_ron("(seed: x)").unwrap_err();
        assert!(err.contains("byte"), "err: {err}");
        assert!(from_ron("(seed: 1, ncells: 2, rounds: [])")
            .unwrap_err()
            .contains("missing region"));
    }
}

//! Seeded random program generation.
//!
//! Everything is derived from one `u64` seed through the deterministic
//! `rand` shim, so a failing seed printed by the smoke test reproduces the
//! exact program forever. The generator needs no validity knowledge: any
//! field values describe *some* program, because the [`crate::plan`]
//! clamps offsets and sizes and suppresses what cannot fit.

use crate::program::{Action, FuzzProgram, StrideMode};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

fn gen_mode(rng: &mut SmallRng) -> StrideMode {
    match rng.gen_range(0u32..4) {
        0 => StrideMode::Contig,
        1 => StrideMode::Stride,
        2 => StrideMode::SendStride,
        _ => StrideMode::RecvStride,
    }
}

fn gen_action(rng: &mut SmallRng, ncells: u32) -> Action {
    let cell = |rng: &mut SmallRng| rng.gen_range(0..ncells);
    match rng.gen_range(0u32..100) {
        0..=34 => Action::Put {
            src: cell(rng),
            dst: cell(rng),
            src_off: rng.gen_range(0u32..1 << 20),
            item: rng.gen_range(1u32..=512),
            count: rng.gen_range(1u32..=16),
            extra: rng.gen_range(0u32..=64),
            mode: gen_mode(rng),
            flag_send: rng.gen_range(-6i8..=11),
            flag_recv: rng.gen_range(-6i8..=11),
            ack: rng.gen_range(0u32..4) == 0,
        },
        35..=59 => Action::Get {
            owner: cell(rng),
            reader: cell(rng),
            src_off: rng.gen_range(0u32..1 << 20),
            item: rng.gen_range(1u32..=512),
            count: rng.gen_range(1u32..=16),
            extra: rng.gen_range(0u32..=64),
            mode: gen_mode(rng),
            flag_send: rng.gen_range(-6i8..=11),
            flag_recv: rng.gen_range(-6i8..=11),
        },
        60..=69 => Action::Send {
            src: cell(rng),
            dst: cell(rng),
            src_off: rng.gen_range(0u32..1 << 20),
            bytes: rng.gen_range(1u32..=2048),
        },
        70..=74 => Action::Bcast {
            root: cell(rng),
            bytes: rng.gen_range(8u32..=1024),
        },
        75..=82 => Action::RStore {
            src: cell(rng),
            owner: cell(rng),
            bytes: rng.gen_range(1u32..=512),
            pattern: rng.gen_range(0u32..u32::MAX),
        },
        83..=89 => Action::RLoad {
            reader: cell(rng),
            owner: cell(rng),
            off: rng.gen_range(0u32..1 << 20),
            bytes: rng.gen_range(1u32..=512),
        },
        _ => Action::Work {
            cell: cell(rng),
            flops: rng.gen_range(1u32..=50_000),
        },
    }
}

fn gen_hostile_action(rng: &mut SmallRng, ncells: u32) -> Action {
    let cell = |rng: &mut SmallRng| rng.gen_range(0..ncells);
    match rng.gen_range(0u32..3) {
        0 => Action::BadPutEmpty {
            src: cell(rng),
            dst: cell(rng),
        },
        1 => Action::BadPutOverlap {
            src: cell(rng),
            dst: cell(rng),
        },
        _ => Action::BadGetMismatch {
            reader: cell(rng),
            owner: cell(rng),
        },
    }
}

/// Generates the fuzz program for `(seed, ncells)`. About one program in
/// sixteen is *hostile*: it contains exactly one malformed operation that
/// issue-time validation must reject with the documented error.
pub fn gen_program(seed: u64, ncells: u32) -> FuzzProgram {
    let mut rng = SmallRng::seed_from_u64(seed ^ (ncells as u64) << 48);
    let region = 1u64 << rng.gen_range(12u32..=16);
    let nrounds = rng.gen_range(1usize..=4);
    let mut rounds: Vec<Vec<Action>> = (0..nrounds)
        .map(|_| {
            let n = rng.gen_range(2usize..=8);
            (0..n).map(|_| gen_action(&mut rng, ncells)).collect()
        })
        .collect();
    let mut expect_error = None;
    if rng.gen_range(0u32..16) == 0 {
        let a = gen_hostile_action(&mut rng, ncells);
        expect_error = Some(hostile_expect(&a).to_string());
        let r = rng.gen_range(0usize..rounds.len());
        let at = rng.gen_range(0usize..=rounds[r].len());
        rounds[r].insert(at, a);
    }
    FuzzProgram {
        seed,
        ncells,
        region,
        expect_error,
        rounds,
    }
}

fn hostile_expect(a: &Action) -> &'static str {
    match a {
        Action::BadPutEmpty { .. } => "zero-length",
        Action::BadPutOverlap { .. } => "overlap",
        Action::BadGetMismatch { .. } => "recv side",
        _ => unreachable!("not hostile"),
    }
}

/// A program whose single PUT exceeds the 4 MB DMA limit, exercising the
/// transparent chunking path (three in-order chunks, flags on the last).
pub fn gen_big_chunk(seed: u64) -> FuzzProgram {
    FuzzProgram {
        seed,
        ncells: 2,
        region: 24 << 20,
        expect_error: None,
        rounds: vec![vec![
            Action::Put {
                src: 0,
                dst: 1,
                src_off: 4096,
                item: 5 << 20,
                count: 2,
                extra: 0,
                mode: StrideMode::Contig,
                flag_send: 1,
                flag_recv: 2,
                ack: true,
            },
            Action::Work {
                cell: 0,
                flops: 100,
            },
        ]],
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generation_is_deterministic() {
        assert_eq!(gen_program(42, 4), gen_program(42, 4));
        assert_ne!(gen_program(42, 4), gen_program(43, 4));
    }

    #[test]
    fn hostile_programs_carry_their_expected_error() {
        let mut hostile = 0;
        for seed in 0..200 {
            let p = gen_program(seed, 4);
            assert_eq!(p.is_hostile(), p.expect_error.is_some());
            if p.is_hostile() {
                hostile += 1;
            }
        }
        assert!(hostile > 0, "hostile programs should appear in 200 seeds");
    }
}

//! The independent oracle: what memory *must* look like afterwards.
//!
//! Computes the expected end state of a [`crate::plan::Plan`] with plain
//! byte arrays and nothing from the emulator — no `StrideSpec` engine, no
//! queues, no network. Gather/scatter is re-implemented here from the
//! paper's definition (§3.1: `count` items of `item_size` bytes, `skip`
//! bytes apart), so a bug in the production stride engine cannot cancel
//! itself out of the comparison.

use crate::plan::{Op, Plan, DSM_SPAN, FLAG_SLOTS};
use apmsc::StrideSpec;

/// Deterministic pattern word `w` of cell `c`'s read-only area.
pub fn pattern_word(seed: u64, cell: u32, word: u64) -> u64 {
    // splitmix64 finalizer over (seed, cell, word).
    let mut z = seed
        .wrapping_add((cell as u64 + 1).wrapping_mul(0x9e37_79b9_7f4a_7c15))
        .wrapping_add(word.wrapping_mul(0xbf58_476d_1ce4_e5b9));
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// The read-only pattern area of one cell, as u64 words.
pub fn pattern_words(seed: u64, cell: u32, src_half: u64) -> Vec<u64> {
    (0..src_half / 8)
        .map(|w| pattern_word(seed, cell, w))
        .collect()
}

/// Deterministic payload for seeded byte streams (RStore data, bcast
/// payloads): byte `i` of stream `pattern`.
pub fn stream_bytes(pattern: u64, len: u64) -> Vec<u8> {
    (0..len)
        .map(|i| {
            let w = pattern_word(pattern, 0x5eed, i / 8);
            (w >> (8 * (i % 8))) as u8
        })
        .collect()
}

/// Expected final state of the machine.
pub struct Expectation {
    /// Final region bytes per cell.
    pub region: Vec<Vec<u8>>,
    /// Final flag values per cell.
    pub flags: Vec<[u32; FLAG_SLOTS]>,
    /// Final DSM window contents per owner (first [`DSM_SPAN`] bytes).
    pub dsm: Vec<Vec<u8>>,
    /// Expected `remote_load` results per cell, in plan order.
    pub loads: Vec<Vec<Vec<u8>>>,
}

fn gather(mem: &[u8], base: u64, spec: StrideSpec) -> Vec<u8> {
    let mut out = Vec::with_capacity(spec.total_bytes() as usize);
    for k in 0..spec.count as u64 {
        let at = (base + k * spec.skip as u64) as usize;
        out.extend_from_slice(&mem[at..at + spec.item_size as usize]);
    }
    out
}

fn scatter(mem: &mut [u8], base: u64, spec: StrideSpec, payload: &[u8]) {
    assert_eq!(payload.len() as u64, spec.total_bytes(), "oracle scatter");
    for (k, item) in payload.chunks(spec.item_size as usize).enumerate() {
        let at = (base + k as u64 * spec.skip as u64) as usize;
        mem[at..at + item.len()].copy_from_slice(item);
    }
}

fn fill_pattern(region: &mut [u8], seed: u64, cell: u32, src_half: u64) {
    for (w, word) in pattern_words(seed, cell, src_half).into_iter().enumerate() {
        region[w * 8..w * 8 + 8].copy_from_slice(&word.to_le_bytes());
    }
}

/// Computes the expected end state of `plan` (which must be non-hostile —
/// hostile plans abort and leave no end state to check).
pub fn expectation(plan: &Plan, seed: u64) -> Expectation {
    let n = plan.ncells as usize;
    let mut region: Vec<Vec<u8>> = vec![vec![0u8; plan.region as usize]; n];
    let mut dsm: Vec<Vec<u8>> = vec![vec![0u8; DSM_SPAN as usize]; n];
    let mut loads: Vec<Vec<Vec<u8>>> = vec![Vec::new(); n];
    for (c, r) in region.iter_mut().enumerate() {
        fill_pattern(r, seed, c as u32, plan.src_half);
    }
    for round in &plan.rounds {
        for op in &round.ops {
            match op {
                Op::Put {
                    src,
                    dst,
                    src_off,
                    dst_off,
                    contig,
                    send,
                    recv,
                    ..
                } => {
                    let payload = match contig {
                        Some(bytes) => {
                            let s = *src_off as usize;
                            region[*src as usize][s..s + *bytes as usize].to_vec()
                        }
                        None => gather(&region[*src as usize], *src_off, *send),
                    };
                    if contig.is_some() {
                        let d = *dst_off as usize;
                        region[*dst as usize][d..d + payload.len()].copy_from_slice(&payload);
                    } else {
                        scatter(&mut region[*dst as usize], *dst_off, *recv, &payload);
                    }
                }
                Op::Get {
                    owner,
                    reader,
                    src_off,
                    dst_off,
                    contig,
                    send,
                    recv,
                    ..
                } => {
                    let payload = match contig {
                        Some(bytes) => {
                            let s = *src_off as usize;
                            region[*owner as usize][s..s + *bytes as usize].to_vec()
                        }
                        None => gather(&region[*owner as usize], *src_off, *send),
                    };
                    if contig.is_some() {
                        let d = *dst_off as usize;
                        region[*reader as usize][d..d + payload.len()].copy_from_slice(&payload);
                    } else {
                        scatter(&mut region[*reader as usize], *dst_off, *recv, &payload);
                    }
                }
                Op::Send {
                    src,
                    dst,
                    src_off,
                    dst_off,
                    bytes,
                } => {
                    let payload = region[*src as usize]
                        [*src_off as usize..(*src_off + *bytes) as usize]
                        .to_vec();
                    region[*dst as usize][*dst_off as usize..(*dst_off + *bytes) as usize]
                        .copy_from_slice(&payload);
                }
                Op::Bcast {
                    off,
                    bytes,
                    pattern,
                    ..
                } => {
                    let payload = stream_bytes(*pattern, *bytes);
                    for r in region.iter_mut() {
                        r[*off as usize..(*off + *bytes) as usize].copy_from_slice(&payload);
                    }
                }
                Op::RStore {
                    owner,
                    off,
                    bytes,
                    pattern,
                    ..
                } => {
                    let payload = stream_bytes(*pattern, *bytes);
                    dsm[*owner as usize][*off as usize..(*off + *bytes) as usize]
                        .copy_from_slice(&payload);
                }
                Op::RLoad {
                    reader,
                    owner,
                    off,
                    bytes,
                } => {
                    let data =
                        dsm[*owner as usize][*off as usize..(*off + *bytes) as usize].to_vec();
                    loads[*reader as usize].push(data);
                }
                Op::Work { .. } | Op::Hostile { .. } => {}
            }
        }
    }
    Expectation {
        region,
        flags: plan.flag_final.clone(),
        dsm,
        loads,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pattern_is_deterministic_and_cell_distinct() {
        assert_eq!(pattern_word(7, 0, 3), pattern_word(7, 0, 3));
        assert_ne!(pattern_word(7, 0, 3), pattern_word(7, 1, 3));
        assert_ne!(pattern_word(7, 0, 3), pattern_word(8, 0, 3));
    }

    #[test]
    fn stream_bytes_are_stable_prefixes() {
        let long = stream_bytes(42, 64);
        let short = stream_bytes(42, 16);
        assert_eq!(&long[..16], &short[..]);
    }

    #[test]
    fn gather_scatter_round_trip() {
        let spec = StrideSpec::new(2, 3, 5);
        let mem: Vec<u8> = (0..32).collect();
        let payload = gather(&mem, 1, spec);
        assert_eq!(payload, vec![1, 2, 6, 7, 11, 12]);
        let mut out = vec![0u8; 32];
        scatter(&mut out, 1, spec, &payload);
        assert_eq!(&out[1..3], &[1, 2]);
        assert_eq!(&out[6..8], &[6, 7]);
        assert_eq!(&out[11..13], &[11, 12]);
    }
}

//! # apfuzz — differential conformance fuzzer for the PUT/GET protocol
//!
//! Generates random SPMD programs over the whole communication surface of
//! the AP1000+ reproduction — PUT/GET (contiguous, strided, chunked past
//! the 4 MB DMA limit), completion flags, acknowledges, SEND/RECEIVE
//! rings, B-net broadcast, DSM remote load/store, barriers — runs them on
//! the `apcore` machine emulator, and checks the run against three
//! independent referees:
//!
//! 1. **A memory oracle** ([`oracle`]): plain byte-array gather/scatter
//!    re-implemented from the paper's §3.1 definition. Every destination
//!    byte, every flag count, every DSM window byte, and every remote-load
//!    result must match.
//! 2. **The plan** ([`plan`]): the trace recorded by the run must contain
//!    exactly the operations the program issued (including ack probes and
//!    the extra PUT ops produced by DMA chunking), the S-net epoch count
//!    must equal the round count, and the Figure-6 per-transfer latency
//!    segments must sum *exactly* to the end-to-end latency.
//! 3. **MLSim** ([`mlsim`]): the trace must replay cleanly under the
//!    AP1000+ model, and the emulator-vs-model divergence report must be
//!    structurally sane (same counts for count-stable op classes, finite
//!    non-negative segment means).
//!
//! Hostile programs — zero-length transfers, hand-built overlapping
//! strides, mismatched send/recv totals — must instead abort with the
//! documented structured error.
//!
//! A fourth referee, the **chaos referee** ([`chaos`]), replays generated
//! programs under deterministic fault-injection schedules: survivable
//! schedules must still pass the memory oracle byte-exactly (retries,
//! detours, and duplicate suppression are invisible to program memory),
//! unsurvivable ones must abort with a structured fault error, and the
//! same (program, schedule) pair must verdict byte-identically every run.
//!
//! Failing seeds are minimized by [`shrink`] (delta debugging over the
//! action list; every candidate is re-planned, so no candidate can
//! deadlock) and emitted as standalone [`ron`] reproducers for the
//! regression corpus in `tests/corpus/` at the repository root, which
//! tier-1 tests replay forever.
//!
//! ```
//! use apfuzz::{gen_program, run_program};
//!
//! // Any seed is a complete, deadlock-free differential test.
//! run_program(&gen_program(1, 4)).unwrap();
//! ```

pub mod chaos;
pub mod generate;
pub mod oracle;
pub mod plan;
pub mod program;
pub mod ron;
pub mod runner;
pub mod shrink;

pub use chaos::{run_chaos, ChaosVerdict};
pub use generate::{gen_big_chunk, gen_program};
pub use plan::Plan;
pub use program::{Action, FuzzProgram, StrideMode};
pub use ron::{from_ron, to_ron};
pub use runner::{category, program_evtrace, run_program};
pub use shrink::{shrink, Shrunk};

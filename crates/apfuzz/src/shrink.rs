//! Failure minimization.
//!
//! Greedy delta-debugging over the action list: first drop whole rounds,
//! then individual actions, re-running the full differential check on
//! every candidate. A candidate is accepted only when it fails with the
//! *same violation category* as the original (the text before the first
//! `:` — see [`crate::runner::category`]), so shrinking cannot wander
//! from the bug being minimized onto an unrelated one. Every candidate is
//! re-planned from scratch, and the plan synthesizes all waits and
//! barriers, so no candidate can deadlock — removal is always safe.

use crate::program::FuzzProgram;
use crate::runner::category;

/// A minimized failure.
pub struct Shrunk {
    /// The smallest failing program found.
    pub program: FuzzProgram,
    /// Its violation string.
    pub violation: String,
    /// Candidate executions spent.
    pub attempts: usize,
}

/// Bisection budget: candidate runs before giving up on further
/// minimization (each run is a full machine emulation).
const MAX_ATTEMPTS: usize = 300;

/// Shrinks `prog`, whose run produced `violation`, re-checking candidates
/// with `check` (returns `Some(violation)` when a candidate still fails).
pub fn shrink<F>(prog: &FuzzProgram, violation: &str, mut check: F) -> Shrunk
where
    F: FnMut(&FuzzProgram) -> Option<String>,
{
    let want = category(violation).to_string();
    let mut best = prog.clone();
    let mut best_violation = violation.to_string();
    let mut attempts = 0;
    let mut try_candidate = |cand: &FuzzProgram, attempts: &mut usize| -> Option<String> {
        if *attempts >= MAX_ATTEMPTS {
            return None;
        }
        *attempts += 1;
        check(cand).filter(|v| category(v) == want)
    };
    // Phase 1: drop whole rounds.
    let mut progress = true;
    while progress && best.rounds.len() > 1 {
        progress = false;
        for r in (0..best.rounds.len()).rev() {
            let mut cand = best.clone();
            cand.rounds.remove(r);
            if let Some(v) = try_candidate(&cand, &mut attempts) {
                best = cand;
                best_violation = v;
                progress = true;
                break;
            }
        }
    }
    // Phase 2: drop individual actions.
    progress = true;
    while progress {
        progress = false;
        'outer: for r in 0..best.rounds.len() {
            for a in (0..best.rounds[r].len()).rev() {
                let mut cand = best.clone();
                cand.rounds[r].remove(a);
                if cand.total_actions() == 0 {
                    continue;
                }
                if let Some(v) = try_candidate(&cand, &mut attempts) {
                    best = cand;
                    best_violation = v;
                    progress = true;
                    break 'outer;
                }
            }
        }
    }
    // Drop rounds emptied by phase 2 (keeps the reproducer tidy; cannot
    // change behavior: an empty round is waits-free and adds one barrier).
    if best.rounds.len() > 1 {
        let mut cand = best.clone();
        cand.rounds.retain(|r| !r.is_empty());
        if !cand.rounds.is_empty() && cand.rounds.len() < best.rounds.len() {
            if let Some(v) = try_candidate(&cand, &mut attempts) {
                best = cand;
                best_violation = v;
            }
        }
    }
    Shrunk {
        program: best,
        violation: best_violation,
        attempts,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::program::Action;

    fn toy(rounds: Vec<Vec<Action>>) -> FuzzProgram {
        FuzzProgram {
            seed: 1,
            ncells: 2,
            region: 4096,
            expect_error: None,
            rounds,
        }
    }

    #[test]
    fn shrinks_to_the_single_guilty_action() {
        let guilty = Action::Work { cell: 0, flops: 99 };
        let noise = Action::Work { cell: 1, flops: 1 };
        let prog = toy(vec![
            vec![noise, noise, guilty, noise],
            vec![noise, noise],
            vec![noise, guilty],
        ]);
        // Fake checker: fails while any flops==99 action remains.
        let s = shrink(&prog, "toy-bug: flops 99", |p| {
            p.rounds
                .iter()
                .flatten()
                .any(|a| matches!(a, Action::Work { flops: 99, .. }))
                .then(|| "toy-bug: flops 99".to_string())
        });
        assert_eq!(s.program.total_actions(), 1);
        assert_eq!(s.program.rounds.len(), 1);
        assert!(matches!(
            s.program.rounds[0][0],
            Action::Work { flops: 99, .. }
        ));
        assert!(s.attempts <= MAX_ATTEMPTS);
    }

    #[test]
    fn category_mismatch_is_not_accepted() {
        let a = Action::Work { cell: 0, flops: 7 };
        let prog = toy(vec![vec![a, a]]);
        // Candidates fail with a different category: no shrink happens.
        let s = shrink(&prog, "original-bug: x", |_| {
            Some("different-bug: y".to_string())
        });
        assert_eq!(s.program.total_actions(), 2);
    }
}

//! Turns a [`FuzzProgram`] into a fully resolved execution plan.
//!
//! The plan is the single source of truth shared by the executor
//! ([`crate::runner`]) and the oracle ([`crate::oracle`]): concrete
//! addresses, stride specs, flag slots, per-round wait targets, and the
//! expected trace-op counts. It is a pure function of the program, so
//! every cell of the SPMD executor computes the identical plan, and the
//! layout rules make generated programs deadlock-free and deterministic
//! by construction:
//!
//! * the first half of each cell's region is a read-only seeded pattern —
//!   every transfer *reads* there and nothing ever writes there;
//! * every transfer *writes* into a destination slot carved from the
//!   second half by a bump allocator that never reuses a byte, so no two
//!   writes in the whole program overlap, and in-flight stragglers from a
//!   previous round cannot race the current one;
//! * DSM loads that would overlap a same-round DSM store (a race whose
//!   outcome is timing-dependent by design) are suppressed;
//! * waits and barriers are synthesized from the surviving actions, so
//!   shrinking a program never produces a hang.

use crate::program::{Action, FuzzProgram, StrideMode};
use apmsc::{StrideSpec, MAX_DMA_BYTES};

/// Completion-flag slots per cell (4 bytes each).
pub const FLAG_SLOTS: usize = 12;
/// Bytes of each owner's DSM shared window the fuzzer uses.
pub const DSM_SPAN: u64 = 64 << 10;
/// Top of the DSM span that is never stored to — loads from here verify
/// the zero-initialized window.
pub const DSM_GUARD: u64 = 256;

/// Largest destination-slot footprint a regular strided transfer may use.
const MAX_SPAN: u64 = 4096;

/// What the hostile PUT variants must be rejected with.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum HostileKind {
    /// Zero-length transfer.
    Empty,
    /// `skip < item_size` with more than one item.
    Overlap,
    /// Send and recv sides describe different totals.
    Mismatch,
}

impl HostileKind {
    /// Substring the run's error rendering must contain.
    pub fn expect(self) -> &'static str {
        match self {
            HostileKind::Empty => "zero-length",
            HostileKind::Overlap => "overlap",
            HostileKind::Mismatch => "recv side",
        }
    }
}

/// One fully resolved operation. All offsets are relative to the cell's
/// region base (PUT/GET/SEND/BCAST) or the owner's DSM window (RSTORE /
/// RLOAD).
#[derive(Clone, Debug)]
pub enum Op {
    Put {
        src: u32,
        dst: u32,
        src_off: u64,
        dst_off: u64,
        /// `Some(bytes)` = contiguous, issued via the chunking `Cell::put`.
        contig: Option<u64>,
        send: StrideSpec,
        recv: StrideSpec,
        flag_send: Option<usize>,
        flag_recv: Option<usize>,
        ack: bool,
    },
    Get {
        owner: u32,
        reader: u32,
        src_off: u64,
        dst_off: u64,
        contig: Option<u64>,
        send: StrideSpec,
        recv: StrideSpec,
        flag_send: Option<usize>,
        flag_recv: Option<usize>,
    },
    Send {
        src: u32,
        dst: u32,
        src_off: u64,
        dst_off: u64,
        bytes: u64,
    },
    Bcast {
        root: u32,
        off: u64,
        bytes: u64,
        pattern: u64,
    },
    RStore {
        src: u32,
        owner: u32,
        off: u64,
        bytes: u64,
        pattern: u64,
    },
    RLoad {
        reader: u32,
        owner: u32,
        off: u64,
        bytes: u64,
    },
    Work {
        cell: u32,
        flops: u64,
    },
    Hostile {
        src: u32,
        dst: u32,
        kind: HostileKind,
    },
}

/// One round of the plan.
#[derive(Clone, Debug, Default)]
pub struct Round {
    /// Resolved operations, in action order (suppressed actions dropped).
    pub ops: Vec<Op>,
    /// Per cell: `(flag slot, cumulative target)` waits before the
    /// barrier.
    pub waits: Vec<Vec<(usize, u32)>>,
    /// Per cell: must call `remote_fence` this round.
    pub fence: Vec<bool>,
    /// Per cell: must call `wait_acks` this round (has issued at least
    /// one acknowledged PUT so far).
    pub wait_acks: Vec<bool>,
}

/// Expected whole-trace operation counts, derived from the plan.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct Expected {
    pub puts: u64,
    pub gets: u64,
    pub ack_probes: u64,
    pub sends: u64,
    pub recvs: u64,
    pub bcast_calls: u64,
    pub works: u64,
    pub flag_waits: u64,
    pub barrier_calls: u64,
    pub remote_stores: u64,
    pub remote_loads: u64,
    pub fences: u64,
}

/// The resolved program.
#[derive(Clone, Debug)]
pub struct Plan {
    pub ncells: u32,
    /// Region bytes per cell (rounded to a multiple of 16).
    pub region: u64,
    /// First `src_half` bytes are the read-only pattern area.
    pub src_half: u64,
    pub rounds: Vec<Round>,
    /// Expected trace totals (valid only for non-hostile programs).
    pub expected: Expected,
    /// Final flag values per cell.
    pub flag_final: Vec<[u32; FLAG_SLOTS]>,
    /// Error substring a hostile program must die with.
    pub expect_error: Option<String>,
    /// Simulated DRAM per cell needed to hold the layout comfortably.
    pub mem_size: u64,
}

fn chunks_of(bytes: u64) -> u64 {
    bytes.div_ceil(MAX_DMA_BYTES)
}

/// Resolves the two stride specs of a PUT/GET. Returns
/// `(contig, send, recv, send_span, recv_span, total)`.
fn resolve_specs(
    mode: StrideMode,
    item: u32,
    count: u32,
    extra: u32,
) -> (Option<u64>, StrideSpec, StrideSpec, u64, u64, u64) {
    let item = item.max(1);
    let count = count.max(1);
    let (item, count) = if mode == StrideMode::Contig {
        (item, count)
    } else {
        // Strided sides keep the footprint small; clamp item and count.
        (item.min(256), count.min(16))
    };
    let total = item as u64 * count as u64;
    match mode {
        StrideMode::Contig => {
            let spec = StrideSpec::contiguous(total.min(u32::MAX as u64));
            (Some(total), spec, spec, total, total, total)
        }
        _ => {
            let skip = item + extra.min(64);
            let strided = StrideSpec::new(item, count, skip);
            let contig = StrideSpec::contiguous(total);
            let span = strided.span_bytes();
            match mode {
                StrideMode::Stride => (None, strided, strided, span, span, total),
                StrideMode::SendStride => (None, strided, contig, span, total, total),
                StrideMode::RecvStride => (None, contig, strided, total, span, total),
                StrideMode::Contig => unreachable!(),
            }
        }
    }
}

fn flag_slot(f: i8) -> Option<usize> {
    (f >= 0).then_some(f as usize % FLAG_SLOTS)
}

struct Builder {
    ncells: u32,
    region: u64,
    src_half: u64,
    /// Next free destination offset per cell (bump allocator, never
    /// reset: destination slots are unique program-wide).
    cursor: Vec<u64>,
    /// Next free DSM store offset per owner.
    dsm_cursor: Vec<u64>,
    /// Cumulative flag bumps per (cell, slot).
    flags: Vec<[u32; FLAG_SLOTS]>,
    /// Cumulative acknowledged PUTs per cell.
    acks: Vec<u32>,
    expected: Expected,
}

impl Builder {
    /// Claims `span` destination bytes on `cell`; `None` when full.
    fn alloc_dst(&mut self, cell: u32, span: u64) -> Option<u64> {
        let c = &mut self.cursor[cell as usize];
        if span == 0 || *c + span > self.region {
            return None;
        }
        let off = *c;
        *c += span;
        Some(off)
    }

    /// Claims a bcast slot at a common offset on *every* cell.
    fn alloc_bcast(&mut self, bytes: u64) -> Option<u64> {
        let off = *self.cursor.iter().max().expect("ncells > 0");
        if off + bytes > self.region {
            return None;
        }
        for c in &mut self.cursor {
            *c = off + bytes;
        }
        Some(off)
    }

    fn alloc_dsm(&mut self, owner: u32, bytes: u64) -> Option<u64> {
        let c = &mut self.dsm_cursor[owner as usize];
        if *c + bytes > DSM_SPAN - DSM_GUARD {
            return None;
        }
        let off = *c;
        *c += bytes;
        Some(off)
    }
}

impl Plan {
    /// Builds the plan. Pure: the same program always yields the same
    /// plan, which is what lets every cell of the SPMD program compute
    /// it independently.
    pub fn build(prog: &FuzzProgram) -> Plan {
        let ncells = prog.ncells.max(1);
        let region = (prog.region & !15).max(64);
        let src_half = region / 2;
        let mut b = Builder {
            ncells,
            region,
            src_half,
            cursor: vec![src_half; ncells as usize],
            dsm_cursor: vec![0; ncells as usize],
            flags: vec![[0; FLAG_SLOTS]; ncells as usize],
            acks: vec![0; ncells as usize],
            expected: Expected::default(),
        };
        // Setup barrier after the pattern writes.
        b.expected.barrier_calls = ncells as u64;
        let mut rounds = Vec::with_capacity(prog.rounds.len());
        let mut expect_error = None;
        for (r, actions) in prog.rounds.iter().enumerate() {
            let round = build_round(&mut b, prog.seed, r as u64, actions, &mut expect_error);
            rounds.push(round);
        }
        let mem_size = (2 * region + (1 << 20)).max(16 << 20);
        Plan {
            ncells,
            region,
            src_half,
            expected: b.expected,
            flag_final: b.flags,
            expect_error,
            mem_size,
            rounds,
        }
    }

    /// Number of RLoad results each cell collects, in plan order.
    pub fn loads_per_cell(&self) -> Vec<usize> {
        let mut n = vec![0usize; self.ncells as usize];
        for round in &self.rounds {
            for op in &round.ops {
                if let Op::RLoad { reader, .. } = op {
                    n[*reader as usize] += 1;
                }
            }
        }
        n
    }
}

#[allow(clippy::too_many_lines)]
fn build_round(
    b: &mut Builder,
    seed: u64,
    round: u64,
    actions: &[Action],
    expect_error: &mut Option<String>,
) -> Round {
    let n = b.ncells;
    let cell = |c: u32| c % n;
    // Pass 1: DSM store ranges of this round, for load-hazard filtering.
    let mut store_ranges: Vec<Vec<(u64, u64)>> = vec![Vec::new(); n as usize];
    {
        let mut probe = b.dsm_cursor.clone();
        for a in actions {
            if let Action::RStore { owner, bytes, .. } = a {
                let owner = cell(*owner);
                let len = (*bytes as u64).clamp(1, 512);
                let c = &mut probe[owner as usize];
                if *c + len <= DSM_SPAN - DSM_GUARD {
                    store_ranges[owner as usize].push((*c, len));
                    *c += len;
                }
            }
        }
    }
    let mut ops = Vec::new();
    let mut bumps: Vec<[u32; FLAG_SLOTS]> = vec![[0; FLAG_SLOTS]; n as usize];
    let mut fence = vec![false; n as usize];
    for (i, a) in actions.iter().enumerate() {
        match *a {
            Action::Put {
                src,
                dst,
                src_off,
                item,
                count,
                extra,
                mode,
                flag_send,
                flag_recv,
                ack,
            } => {
                let (src, dst) = (cell(src), cell(dst));
                let (contig, send, recv, send_span, recv_span, total) =
                    resolve_specs(mode, item, count, extra);
                if total > MAX_DMA_BYTES && contig.is_none() {
                    continue; // only the chunking contiguous path may exceed one DMA
                }
                if mode != StrideMode::Contig && send_span.max(recv_span) > MAX_SPAN {
                    continue;
                }
                if send_span > b.src_half {
                    continue;
                }
                let Some(dst_off) = b.alloc_dst(dst, recv_span) else {
                    continue;
                };
                let src_off = src_off as u64 % (b.src_half - send_span + 1);
                let flag_send = flag_slot(flag_send);
                let flag_recv = flag_slot(flag_recv);
                // Visibility rule: the oracle checks destination memory
                // right after the final barrier, so every PUT must be
                // *provably delivered* by round end — either the receiver
                // waits a recv flag, or the sender waits the acknowledge
                // (in-order T-net: the ack probe returns after delivery).
                let ack = ack || flag_recv.is_none();
                if let Some(s) = flag_send {
                    bumps[src as usize][s] += 1;
                }
                if let Some(s) = flag_recv {
                    bumps[dst as usize][s] += 1;
                }
                b.expected.puts += contig.map_or(1, chunks_of);
                if ack {
                    b.expected.ack_probes += 1;
                    b.acks[src as usize] += 1;
                }
                ops.push(Op::Put {
                    src,
                    dst,
                    src_off,
                    dst_off,
                    contig,
                    send,
                    recv,
                    flag_send,
                    flag_recv,
                    ack,
                });
            }
            Action::Get {
                owner,
                reader,
                src_off,
                item,
                count,
                extra,
                mode,
                flag_send,
                flag_recv,
            } => {
                let (owner, reader) = (cell(owner), cell(reader));
                let (contig, send, recv, send_span, recv_span, total) =
                    resolve_specs(mode, item, count, extra);
                if total > MAX_DMA_BYTES && contig.is_none() {
                    continue;
                }
                if mode != StrideMode::Contig && send_span.max(recv_span) > MAX_SPAN {
                    continue;
                }
                if send_span > b.src_half {
                    continue;
                }
                let Some(dst_off) = b.alloc_dst(reader, recv_span) else {
                    continue;
                };
                let src_off = src_off as u64 % (b.src_half - send_span + 1);
                let flag_send = flag_slot(flag_send);
                // Visibility rule: GET has no acknowledge variant, so the
                // reader always waits a recv flag before the barrier.
                let flag_recv = Some(flag_slot(flag_recv).unwrap_or(i % FLAG_SLOTS));
                if let Some(s) = flag_send {
                    bumps[owner as usize][s] += 1;
                }
                if let Some(s) = flag_recv {
                    bumps[reader as usize][s] += 1;
                }
                b.expected.gets += contig.map_or(1, chunks_of);
                ops.push(Op::Get {
                    owner,
                    reader,
                    src_off,
                    dst_off,
                    contig,
                    send,
                    recv,
                    flag_send,
                    flag_recv,
                });
            }
            Action::Send {
                src,
                dst,
                src_off,
                bytes,
            } => {
                let (src, dst) = (cell(src), cell(dst));
                let bytes = (bytes as u64).clamp(1, 2048);
                if bytes > b.src_half {
                    continue;
                }
                let Some(dst_off) = b.alloc_dst(dst, bytes) else {
                    continue;
                };
                let src_off = src_off as u64 % (b.src_half - bytes + 1);
                b.expected.sends += 1;
                b.expected.recvs += 1;
                ops.push(Op::Send {
                    src,
                    dst,
                    src_off,
                    dst_off,
                    bytes,
                });
            }
            Action::Bcast { root, bytes } => {
                let root = cell(root);
                // Multiple of 8: payloads are written as u64 words.
                let bytes = (bytes as u64).clamp(8, 1024) & !7;
                let Some(off) = b.alloc_bcast(bytes) else {
                    continue;
                };
                b.expected.bcast_calls += n as u64;
                ops.push(Op::Bcast {
                    root,
                    off,
                    bytes,
                    pattern: seed ^ (round << 32) ^ (i as u64) ^ 0xb0a5,
                });
            }
            Action::RStore {
                src,
                owner,
                bytes,
                pattern,
            } => {
                let (src, owner) = (cell(src), cell(owner));
                let bytes = (bytes as u64).clamp(1, 512);
                let Some(off) = b.alloc_dsm(owner, bytes) else {
                    continue;
                };
                fence[src as usize] = true;
                b.expected.remote_stores += 1;
                ops.push(Op::RStore {
                    src,
                    owner,
                    off,
                    bytes,
                    pattern: pattern as u64 ^ seed,
                });
            }
            Action::RLoad {
                reader,
                owner,
                off,
                bytes,
            } => {
                let (reader, owner) = (cell(reader), cell(owner));
                let bytes = (bytes as u64).clamp(1, 512);
                let off = off as u64 % (DSM_SPAN - bytes + 1);
                let hazard = store_ranges[owner as usize]
                    .iter()
                    .any(|&(s, l)| off < s + l && s < off + bytes);
                if hazard {
                    continue;
                }
                b.expected.remote_loads += 1;
                ops.push(Op::RLoad {
                    reader,
                    owner,
                    off,
                    bytes,
                });
            }
            Action::Work { cell: c, flops } => {
                let c = cell(c);
                let flops = (flops as u64).clamp(1, 100_000);
                b.expected.works += 1;
                ops.push(Op::Work { cell: c, flops });
            }
            Action::BadPutEmpty { src, dst } => {
                hostile(
                    &mut ops,
                    expect_error,
                    cell(src),
                    cell(dst),
                    HostileKind::Empty,
                );
            }
            Action::BadPutOverlap { src, dst } => {
                hostile(
                    &mut ops,
                    expect_error,
                    cell(src),
                    cell(dst),
                    HostileKind::Overlap,
                );
            }
            Action::BadGetMismatch { reader, owner } => {
                hostile(
                    &mut ops,
                    expect_error,
                    cell(reader),
                    cell(owner),
                    HostileKind::Mismatch,
                );
            }
        }
    }
    // Synthesize the waits: each cell waits for every flag slot bumped on
    // it this round to reach its cumulative total.
    let mut waits = vec![Vec::new(); n as usize];
    for c in 0..n as usize {
        for (s, &bump) in bumps[c].iter().enumerate() {
            if bump > 0 {
                b.flags[c][s] += bump;
                waits[c].push((s, b.flags[c][s]));
                b.expected.flag_waits += 1;
            }
        }
    }
    let wait_acks: Vec<bool> = b.acks.iter().map(|&a| a > 0).collect();
    for c in 0..n as usize {
        if fence[c] {
            b.expected.fences += 1;
        }
        if wait_acks[c] {
            b.expected.flag_waits += 1; // wait_acks is a flag wait
        }
    }
    b.expected.barrier_calls += n as u64;
    Round {
        ops,
        waits,
        fence,
        wait_acks,
    }
}

fn hostile(
    ops: &mut Vec<Op>,
    expect_error: &mut Option<String>,
    src: u32,
    dst: u32,
    kind: HostileKind,
) {
    if expect_error.is_none() {
        *expect_error = Some(kind.expect().to_string());
    }
    ops.push(Op::Hostile { src, dst, kind });
}

//! The chaos smoke suite: a (program seed × fault seed) grid of random
//! fuzz programs under random fault schedules, checked by the chaos
//! referee — survivable schedules must complete with oracle-verified
//! memory and byte-identical fault reports across repeated runs;
//! unsurvivable schedules must abort with a structured fault error, never
//! hang or corrupt memory. Scale the grid up with
//! `APFUZZ_CHAOS_SEEDS=<n>` (program seeds per machine size; default 4,
//! three schedules each, well under the smoke budget).

use apcore::FaultSpec;
use apfuzz::{gen_program, run_chaos, ChaosVerdict};

const FAULT_SEEDS: u64 = 3;

fn seeds_per_size() -> u64 {
    std::env::var("APFUZZ_CHAOS_SEEDS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(4)
}

#[test]
fn chaos_survivable_grid() {
    for ncells in [4u32, 9] {
        for seed in 0..seeds_per_size() {
            let prog = gen_program(seed, ncells);
            for fault_seed in 0..FAULT_SEEDS {
                let spec = FaultSpec::random(fault_seed, ncells, true);
                let v = run_chaos(&prog, &spec).unwrap_or_else(|e| {
                    panic!("seed {seed} ncells {ncells} fault {fault_seed}: {e}")
                });
                assert!(
                    matches!(v, ChaosVerdict::Survived { .. }),
                    "seed {seed} ncells {ncells} fault {fault_seed}: \
                     survivable schedule aborted: {v:?}"
                );
            }
        }
    }
}

#[test]
fn chaos_unsurvivable_grid() {
    for seed in 0..seeds_per_size() {
        let prog = gen_program(0xC4A05 ^ seed, 4);
        for fault_seed in 0..FAULT_SEEDS {
            let spec = FaultSpec::random(fault_seed, 4, false);
            // Ok(Aborted) = the crash landed and the abort was structured;
            // Ok(Survived) = the program finished before the crash fired.
            // Either meets the contract — an Err means it was violated.
            run_chaos(&prog, &spec)
                .unwrap_or_else(|e| panic!("seed {seed} fault {fault_seed}: {e}"));
        }
    }
}

//! The fuzz smoke suite: hundreds of random programs across several
//! machine sizes (including a prime and the degenerate 1-cell machine),
//! each checked against the memory oracle, the planned op counts, the
//! latency-segment identity, and the MLSim replay — see the `apfuzz`
//! crate docs for the full invariant list.
//!
//! On failure the program is shrunk and printed as a standalone RON
//! reproducer; set `APFUZZ_WRITE_CORPUS=1` to also write it into the
//! repository-root `tests/corpus/` directory for permanent regression
//! coverage. Scale the sweep up with `APFUZZ_SEEDS=<n>` (default 70 per
//! machine size, ~210 programs, well under the 30 s smoke budget).

use apfuzz::{gen_big_chunk, gen_program, run_program, shrink, to_ron, FuzzProgram, Plan};

fn check(prog: &FuzzProgram) {
    let Err(violation) = run_program(prog) else {
        return;
    };
    let shrunk = shrink(prog, &violation, |p| run_program(p).err());
    let mut min = shrunk.program;
    // Refresh the recorded expectation so the reproducer documents what
    // the *minimized* program demands.
    min.expect_error = Plan::build(&min).expect_error.clone();
    let ron = to_ron(&min);
    if std::env::var("APFUZZ_WRITE_CORPUS").as_deref() == Ok("1") {
        let dir = concat!(env!("CARGO_MANIFEST_DIR"), "/../../tests/corpus");
        std::fs::create_dir_all(dir).expect("create corpus dir");
        let path = format!("{dir}/shrunk-seed{}-n{}.ron", min.seed, min.ncells);
        std::fs::write(&path, &ron).expect("write corpus file");
        eprintln!("wrote reproducer to {path}");
        // The binary-trace twin: replayable with `repro replay`/`remodel`
        // (absent when the reproducer aborts before completing a run).
        if let Some(bytes) = apfuzz::program_evtrace(&min) {
            let tpath = format!("{dir}/shrunk-seed{}-n{}.evtrace", min.seed, min.ncells);
            std::fs::write(&tpath, &bytes).expect("write corpus trace");
            eprintln!("wrote binary trace to {tpath}");
        }
    }
    panic!(
        "fuzz violation (seed {}, ncells {}): {}\n\
         shrunk to {} action(s) after {} candidate run(s):\n{ron}",
        prog.seed,
        prog.ncells,
        shrunk.violation,
        min.total_actions(),
        shrunk.attempts,
    );
}

fn seeds_per_size() -> u64 {
    std::env::var("APFUZZ_SEEDS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(70)
}

/// The main sweep: random programs on a power-of-two, a prime, and an
/// odd-composite machine.
#[test]
fn fuzz_random_programs() {
    for ncells in [4u32, 7, 9] {
        for seed in 0..seeds_per_size() {
            check(&gen_program(seed, ncells));
        }
    }
}

/// Degenerate and awkward machine sizes: a single cell (every transfer is
/// a loopback), a pair, and sizes whose torus is non-square.
#[test]
fn fuzz_edge_machine_sizes() {
    for (ncells, seeds) in [(1u32, 8u64), (2, 8), (12, 5), (13, 5)] {
        for seed in 0..seeds {
            check(&gen_program(0xED6E ^ seed, ncells));
        }
    }
}

/// One program whose PUT exceeds the 4 MB DMA limit: exercises the
/// transparent chunking path (three in-order chunks, flags and the
/// acknowledge riding the last one) at full differential depth.
#[test]
fn fuzz_big_chunk_program() {
    check(&gen_big_chunk(2026));
}

/// The binary-trace twin of a written reproducer decodes cleanly and
/// carries the program's ops and timeline.
#[test]
fn reproducer_evtrace_round_trips() {
    let prog = gen_program(3, 4);
    let bytes = apfuzz::program_evtrace(&prog).expect("healthy program records");
    let doc = aptrace::EvTrace::decode(&bytes).expect("evtrace decodes");
    assert_eq!(doc.header.app, "apfuzz");
    assert_eq!(doc.header.ncells, 4);
    assert!(doc.ops.is_some(), "ops section present");
    assert!(doc.summary.events > 0, "timeline recorded");
    assert!(doc.summary.total_ns > 0);
}

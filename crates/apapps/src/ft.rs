//! NPB FT — 3-D fast Fourier transform.
//!
//! §5.2: *"FT is a 3-D Fourier transform. The input array size is
//! 256×256×128."* The cube is Z-slab partitioned; FFTs along x and y are
//! local, the z dimension is reached through an **all-to-all transpose**
//! implemented with `put_stride` — the workload the paper's stride
//! hardware (§3.1, §4.1) exists for. Following NPB: the forward transform
//! runs once, then each iteration evolves the spectrum, inverse-transforms
//! (one transpose each), and checksums.
//!
//! Local PUTs are skipped (§5.4: "no PUT operations except … for local
//! cell need acknowledgment"; the VPP runtime short-circuits them), so
//! each transpose is P−1 acknowledged stride PUTs per cell.

use crate::util::fft::{fft_flops, fft_inplace};
use crate::util::lcg::NpbRandom;
use crate::{Scale, Workload};
use apcore::{run_with, ApResult, MachineConfig, RunReport, StrideSpec, VAddr};
use std::sync::Arc;

/// FT instance. `nx`, `ny`, `nz` must be powers of two; `pe` must divide
/// both `nx` and `nz`.
#[derive(Clone, Copy, Debug)]
pub struct Ft {
    /// Number of cells (128 in the paper).
    pub pe: u32,
    /// Grid dimensions.
    pub nx: usize,
    /// Grid dimensions.
    pub ny: usize,
    /// Grid dimensions.
    pub nz: usize,
    /// Evolution/checksum iterations (6 in the paper).
    pub iters: usize,
}

impl Ft {
    /// Standard instance at `scale`.
    pub fn new(scale: Scale) -> Self {
        match scale {
            Scale::Test => Ft {
                pe: 4,
                nx: 8,
                ny: 8,
                nz: 8,
                iters: 2,
            },
            Scale::Paper => Ft {
                pe: 128,
                nx: 128,
                ny: 64,
                nz: 128,
                iters: 3,
            },
        }
    }

    fn check(&self) {
        assert!(
            self.nx.is_power_of_two() && self.ny.is_power_of_two() && self.nz.is_power_of_two()
        );
        assert_eq!(self.nx % self.pe as usize, 0, "pe must divide nx");
        assert_eq!(self.nz % self.pe as usize, 0, "pe must divide nz");
    }

    /// Initial field value pair (re, im) at flat index `g`.
    fn seed_at(g: u64) -> (f64, f64) {
        let mut r = NpbRandom::skip_to(crate::util::lcg::SEED, 2 * g);
        (r.next_f64() - 0.5, r.next_f64() - 0.5)
    }

    /// The time-evolution factor for wavenumber flat index `g` at step `t`
    /// (a stand-in for NPB's Gaussian evolution kernel — deterministic and
    /// magnitude-decaying).
    fn evolve_factor(&self, x: usize, y: usize, z: usize, t: usize) -> f64 {
        let kx = x.min(self.nx - x) as f64;
        let ky = y.min(self.ny - y) as f64;
        let kz = z.min(self.nz - z) as f64;
        let k2 = kx * kx + ky * ky + kz * kz;
        (-1e-4 * k2 * t as f64).exp()
    }

    /// Sequential reference: returns `(re, im)` checksums per iteration.
    pub fn reference(&self) -> Vec<(f64, f64)> {
        self.check();
        let (nx, ny, nz) = (self.nx, self.ny, self.nz);
        let n = nx * ny * nz;
        let mut u: Vec<f64> = Vec::with_capacity(2 * n);
        for g in 0..n as u64 {
            let (re, im) = Self::seed_at(g);
            u.push(re);
            u.push(im);
        }
        // Forward 3-D FFT.
        fft3(&mut u, nx, ny, nz, false);
        let u1 = u.clone();
        let mut sums = Vec::new();
        for t in 1..=self.iters {
            // Evolve the saved spectrum.
            let mut v = u1.clone();
            for z in 0..nz {
                for y in 0..ny {
                    for x in 0..nx {
                        let f = self.evolve_factor(x, y, z, t);
                        let idx = 2 * ((z * ny + y) * nx + x);
                        v[idx] *= f;
                        v[idx + 1] *= f;
                    }
                }
            }
            fft3(&mut v, nx, ny, nz, true);
            let mut sr = 0.0;
            let mut si = 0.0;
            for g in 0..n {
                sr += v[2 * g];
                si += v[2 * g + 1];
            }
            sums.push((sr, si));
        }
        sums
    }
}

/// Sequential in-place 3-D FFT on a `(z, y, x)`-ordered interleaved cube.
fn fft3(u: &mut [f64], nx: usize, ny: usize, nz: usize, inverse: bool) {
    // Along x: contiguous lines.
    let mut line = vec![0.0f64; 2 * nx.max(ny).max(nz)];
    for z in 0..nz {
        for y in 0..ny {
            let base = 2 * ((z * ny + y) * nx);
            fft_inplace(&mut u[base..base + 2 * nx], nx, inverse);
        }
    }
    // Along y: gather stride nx.
    for z in 0..nz {
        for x in 0..nx {
            for y in 0..ny {
                let idx = 2 * ((z * ny + y) * nx + x);
                line[2 * y] = u[idx];
                line[2 * y + 1] = u[idx + 1];
            }
            fft_inplace(&mut line[..2 * ny], ny, inverse);
            for y in 0..ny {
                let idx = 2 * ((z * ny + y) * nx + x);
                u[idx] = line[2 * y];
                u[idx + 1] = line[2 * y + 1];
            }
        }
    }
    // Along z: gather stride nx*ny.
    for y in 0..ny {
        for x in 0..nx {
            for z in 0..nz {
                let idx = 2 * ((z * ny + y) * nx + x);
                line[2 * z] = u[idx];
                line[2 * z + 1] = u[idx + 1];
            }
            fft_inplace(&mut line[..2 * nz], nz, inverse);
            for z in 0..nz {
                let idx = 2 * ((z * ny + y) * nx + x);
                u[idx] = line[2 * z];
                u[idx + 1] = line[2 * z + 1];
            }
        }
    }
}

impl Workload for Ft {
    fn name(&self) -> &'static str {
        "FT"
    }

    fn pe(&self) -> u32 {
        self.pe
    }

    fn is_vpp(&self) -> bool {
        true
    }

    fn run(&self) -> ApResult<RunReport<()>> {
        self.check();
        let cfg = *self;
        let reference = Arc::new(cfg.reference());
        run_with(MachineConfig::new(cfg.pe), move |cell| {
            let me = cell.id();
            let p = cell.ncells();
            let (nx, ny, nz) = (cfg.nx, cfg.ny, cfg.nz);
            let (nxb, nzb) = (nx / p, nz / p);
            let slab = 2 * nx * ny * nzb; // f64 count, Z-partition
            let pencil = 2 * nxb * ny * nz; // f64 count, X-partition
            let a_buf = cell.alloc::<f64>(slab);
            let b_buf = cell.alloc::<f64>(pencil);
            let staging = cell.alloc::<f64>(pencil.max(slab));
            let flag = cell.alloc_flag();
            let mut arrivals = 0u32;

            // ---- init my slab (z in [me*nzb, (me+1)*nzb)) -------------
            let mut a = vec![0.0f64; slab];
            for zz in 0..nzb {
                let z = me * nzb + zz;
                for y in 0..ny {
                    for x in 0..nx {
                        let g = ((z * ny + y) * nx + x) as u64;
                        let (re, im) = Ft::seed_at(g);
                        let idx = 2 * ((zz * ny + y) * nx + x);
                        a[idx] = re;
                        a[idx + 1] = im;
                    }
                }
            }
            cell.work((nx * ny * nzb) as u64 * 4);
            cell.barrier();

            // Local x/y FFTs on the slab.
            let fft_xy = |cell: &mut apcore::Cell, a: &mut Vec<f64>, inverse: bool| {
                let mut line = vec![0.0f64; 2 * ny];
                for zz in 0..nzb {
                    for y in 0..ny {
                        let base = 2 * ((zz * ny + y) * nx);
                        fft_inplace(&mut a[base..base + 2 * nx], nx, inverse);
                    }
                    for x in 0..nx {
                        for y in 0..ny {
                            let idx = 2 * ((zz * ny + y) * nx + x);
                            line[2 * y] = a[idx];
                            line[2 * y + 1] = a[idx + 1];
                        }
                        fft_inplace(&mut line[..2 * ny], ny, inverse);
                        for y in 0..ny {
                            let idx = 2 * ((zz * ny + y) * nx + x);
                            a[idx] = line[2 * y];
                            a[idx + 1] = line[2 * y + 1];
                        }
                    }
                }
                cell.work(nzb as u64 * (ny as u64 * fft_flops(nx) + nx as u64 * fft_flops(ny)));
            };

            // All-to-all forward transpose: slab A -> pencil B.
            let transpose_fwd =
                |cell: &mut apcore::Cell, a: &[f64], arrivals: &mut u32| -> Vec<f64> {
                    cell.write_slice(a_buf, a);
                    cell.barrier();
                    for q in 0..p {
                        if q == me {
                            continue;
                        }
                        cell.rts((nzb * ny) as u64 / 4);
                        // My rows of q's x-block: runs of nxb complex at every
                        // (z, y) of my slab.
                        let send =
                            StrideSpec::new((nxb * 16) as u32, (nzb * ny) as u32, (nx * 16) as u32);
                        let block_bytes = (nxb * ny * nzb * 16) as u64;
                        let recv = StrideSpec::contiguous(block_bytes);
                        cell.put_stride(
                            q,
                            staging + (me * nxb * ny * nzb * 16) as u64,
                            a_buf + (q * nxb * 16) as u64,
                            send,
                            recv,
                            VAddr::NULL,
                            flag,
                            true,
                        );
                    }
                    cell.wait_acks();
                    *arrivals += (p - 1) as u32;
                    cell.wait_flag(flag, *arrivals);
                    // Assemble B from the staging blocks (+ own block direct).
                    let st = cell.read_slice::<f64>(staging, pencil);
                    let mut b = vec![0.0f64; pencil];
                    for src in 0..p {
                        for zz in 0..nzb {
                            let z = src * nzb + zz;
                            for y in 0..ny {
                                for xx in 0..nxb {
                                    let (re, im) = if src == me {
                                        let idx = 2 * ((zz * ny + y) * nx + me * nxb + xx);
                                        (a[idx], a[idx + 1])
                                    } else {
                                        let s =
                                            2 * ((src * nxb * ny * nzb) + (zz * ny + y) * nxb + xx);
                                        (st[s], st[s + 1])
                                    };
                                    let d = 2 * ((xx * ny + y) * nz + z);
                                    b[d] = re;
                                    b[d + 1] = im;
                                }
                            }
                        }
                    }
                    cell.work((nxb * ny * nz) as u64);
                    cell.barrier();
                    b
                };

            // All-to-all backward transpose: pencil B -> slab A.
            let transpose_bwd =
                |cell: &mut apcore::Cell, b: &[f64], arrivals: &mut u32| -> Vec<f64> {
                    cell.write_slice(b_buf, b);
                    cell.barrier();
                    for q in 0..p {
                        if q == me {
                            continue;
                        }
                        cell.rts((nxb * ny) as u64 / 4);
                        // q's z-rows of my x-block: runs of nzb complex at
                        // every (x_local, y).
                        let send =
                            StrideSpec::new((nzb * 16) as u32, (nxb * ny) as u32, (nz * 16) as u32);
                        let block_bytes = (nxb * ny * nzb * 16) as u64;
                        let recv = StrideSpec::contiguous(block_bytes);
                        cell.put_stride(
                            q,
                            staging + (me * nxb * ny * nzb * 16) as u64,
                            b_buf + (q * nzb * 16) as u64,
                            send,
                            recv,
                            VAddr::NULL,
                            flag,
                            true,
                        );
                    }
                    cell.wait_acks();
                    *arrivals += (p - 1) as u32;
                    cell.wait_flag(flag, *arrivals);
                    let st = cell.read_slice::<f64>(staging, pencil);
                    let mut a = vec![0.0f64; slab];
                    for src in 0..p {
                        for xx in 0..nxb {
                            let x = src * nxb + xx;
                            for y in 0..ny {
                                for zz in 0..nzb {
                                    let (re, im) = if src == me {
                                        let idx = 2 * ((xx * ny + y) * nz + me * nzb + zz);
                                        (b[idx], b[idx + 1])
                                    } else {
                                        let s =
                                            2 * ((src * nxb * ny * nzb) + (xx * ny + y) * nzb + zz);
                                        (st[s], st[s + 1])
                                    };
                                    let d = 2 * ((zz * ny + y) * nx + x);
                                    a[d] = re;
                                    a[d + 1] = im;
                                }
                            }
                        }
                    }
                    cell.work((nxb * ny * nzb * p) as u64);
                    cell.barrier();
                    a
                };

            // FFT along z on the pencil (contiguous lines).
            let fft_z = |cell: &mut apcore::Cell, b: &mut Vec<f64>, inverse: bool| {
                for xx in 0..nxb {
                    for y in 0..ny {
                        let base = 2 * ((xx * ny + y) * nz);
                        fft_inplace(&mut b[base..base + 2 * nz], nz, inverse);
                    }
                }
                cell.work((nxb * ny) as u64 * fft_flops(nz));
            };

            // ---- forward transform ------------------------------------
            fft_xy(cell, &mut a, false);
            let mut u1 = transpose_fwd(cell, &a, &mut arrivals);
            fft_z(cell, &mut u1, false);

            // ---- iterations -------------------------------------------
            for t in 1..=cfg.iters {
                let mut v = u1.clone();
                for xx in 0..nxb {
                    let x = me * nxb + xx;
                    for y in 0..ny {
                        for z in 0..nz {
                            let f = cfg.evolve_factor(x, y, z, t);
                            let idx = 2 * ((xx * ny + y) * nz + z);
                            v[idx] *= f;
                            v[idx + 1] *= f;
                        }
                    }
                }
                cell.work((nxb * ny * nz * 2) as u64);
                fft_z(cell, &mut v, true);
                let mut w = transpose_bwd(cell, &v, &mut arrivals);
                fft_xy(cell, &mut w, true);
                // Checksum: two scalar global sums (re, im).
                let (mut sr, mut si) = (0.0f64, 0.0f64);
                for g in 0..slab / 2 {
                    sr += w[2 * g];
                    si += w[2 * g + 1];
                }
                cell.work(slab as u64);
                let gr = cell.reduce_sum_f64(sr);
                let gi = cell.reduce_sum_f64(si);
                let (er, ei) = reference[t - 1];
                let scale = er.abs().max(ei.abs()).max(1e-12);
                assert!(
                    (gr - er).abs() / scale < 1e-6 && (gi - ei).abs() / scale < 1e-6,
                    "cell {me}: checksum iter {t}: got ({gr},{gi}), want ({er},{ei})"
                );
            }
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use aptrace::AppStats;

    #[test]
    fn ft_verifies_checksums_and_uses_stride_puts() {
        let cfg = Ft::new(Scale::Test);
        let report = cfg.run().unwrap();
        let row = AppStats::from_trace(&report.trace).to_row();
        // (iters + 1) transposes × (P-1) stride PUTs per PE.
        let expect = ((cfg.iters + 1) * (cfg.pe as usize - 1)) as f64;
        assert_eq!(row.puts, expect);
        assert_eq!(row.put, 0.0, "all FT transfers are strided");
        assert_eq!(row.gop, (2 * cfg.iters) as f64);
        assert!(row.sync > 0.0);
    }

    #[test]
    fn reference_checksums_decay_with_evolution() {
        let cfg = Ft::new(Scale::Test);
        let sums = cfg.reference();
        assert_eq!(sums.len(), cfg.iters);
        assert!(sums.iter().all(|(r, i)| r.is_finite() && i.is_finite()));
    }

    #[test]
    fn fft3_round_trip() {
        let (nx, ny, nz) = (8, 4, 16);
        let n = nx * ny * nz;
        let orig: Vec<f64> = (0..2 * n).map(|i| ((i * 31) % 97) as f64 / 97.0).collect();
        let mut u = orig.clone();
        fft3(&mut u, nx, ny, nz, false);
        fft3(&mut u, nx, ny, nz, true);
        for (a, b) in u.iter().zip(&orig) {
            assert!((a - b).abs() < 1e-9);
        }
    }
}

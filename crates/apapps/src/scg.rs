//! SCG — scaled conjugate gradient in "C with PUT/GET".
//!
//! §5.2: *"SCG solves Poisson's differential equation using the scaled
//! conjugate gradient method in which the coefficient matrix is scaled by
//! diagonal elements. The matrix to be solved is a sparse 40000 × 40000
//! matrix"* — the 5-point operator of a 200×200 grid, whose rows are
//! band-partitioned. Each iteration's matvec needs one halo row from each
//! neighbour: the row going **up** travels by PUT (flag-synchronized),
//! the row going **down** by SEND/RECEIVE — reproducing Table 3's
//! striking SCG row where SENDs ≈ PUTs (878.1 each) with 1600-byte
//! messages (200 × 8), two scalar Gops per iteration, and a single
//! barrier in the whole run.

use crate::util::sparse::Csr;
use crate::{Scale, Workload};
use apcore::{run_with, ApResult, MachineConfig, RunReport, VAddr};
use std::sync::Arc;

/// SCG instance: Poisson on a `gx × gy` grid over `pe` cells.
#[derive(Clone, Copy, Debug)]
pub struct Scg {
    /// Number of cells (64 in the paper).
    pub pe: u32,
    /// Grid width (200 in the paper).
    pub gx: usize,
    /// Grid height (200 in the paper).
    pub gy: usize,
    /// Iteration cap.
    pub max_iters: usize,
    /// Convergence threshold on `‖r‖`.
    pub tol: f64,
}

impl Scg {
    /// Standard instance at `scale`.
    pub fn new(scale: Scale) -> Self {
        match scale {
            Scale::Test => Scg {
                pe: 4,
                gx: 24,
                gy: 24,
                max_iters: 200,
                tol: 1e-8,
            },
            Scale::Paper => Scg {
                pe: 64,
                gx: 200,
                gy: 200,
                max_iters: 450,
                tol: 1e-8,
            },
        }
    }

    /// Sequential reference: identical diagonally-scaled CG. Returns
    /// `(x, iterations, final ‖r‖²)`.
    pub fn reference(&self) -> (Vec<f64>, usize, f64) {
        let a = Csr::poisson_5pt(self.gx, self.gy);
        let n = a.n;
        let b = vec![1.0f64; n];
        let mut x = vec![0.0f64; n];
        let mut r = b;
        let mut z: Vec<f64> = r.iter().map(|v| v / 4.0).collect();
        let mut p = z.clone();
        let mut q = vec![0.0f64; n];
        let mut rho: f64 = r.iter().zip(&z).map(|(a, b)| a * b).sum();
        let mut iters = 0;
        let mut rr: f64 = r.iter().map(|v| v * v).sum();
        while iters < self.max_iters && rr.sqrt() > self.tol {
            a.matvec(&p, &mut q);
            let pq: f64 = p.iter().zip(&q).map(|(a, b)| a * b).sum();
            let alpha = rho / pq;
            for i in 0..n {
                x[i] += alpha * p[i];
                r[i] -= alpha * q[i];
            }
            for i in 0..n {
                z[i] = r[i] / 4.0;
            }
            let rho_new: f64 = r.iter().zip(&z).map(|(a, b)| a * b).sum();
            rr = rho_new * 4.0; // r·z = r·r/4 for constant scaling
            let beta = rho_new / rho;
            rho = rho_new;
            for i in 0..n {
                p[i] = z[i] + beta * p[i];
            }
            iters += 1;
        }
        (x, iters, rr)
    }
}

impl Workload for Scg {
    fn name(&self) -> &'static str {
        "SCG"
    }

    fn pe(&self) -> u32 {
        self.pe
    }

    fn is_vpp(&self) -> bool {
        false
    }

    fn run(&self) -> ApResult<RunReport<()>> {
        let cfg = *self;
        let (ref_x, ref_iters, _) = cfg.reference();
        let reference = Arc::new((ref_x, ref_iters));
        run_with(MachineConfig::new(cfg.pe), move |cell| {
            let me = cell.id();
            let p = cell.ncells();
            let (gx, gy) = (cfg.gx, cfg.gy);
            // Band of grid rows.
            let chunk = gy.div_ceil(p);
            let ylo = (me * chunk).min(gy);
            let yhi = ((me + 1) * chunk).min(gy);
            let nrows = yhi - ylo;
            let nloc = nrows * gx;
            let has_up = ylo > 0 && nrows > 0;
            let has_dn = yhi < gy && nrows > 0;

            // Simulated halo rows: `halo_top` mirrors the last row of the
            // band above (arrives by SEND), `halo_bot` the first row of
            // the band below (arrives by PUT).
            let halo_top = cell.alloc::<f64>(gx);
            let halo_bot = cell.alloc::<f64>(gx);
            let out_row = cell.alloc::<f64>(gx);
            let put_flag = cell.alloc_flag();
            let mut puts_seen = 0u32;

            // Local p (search direction) with room for both halos:
            // index 0..gx = top halo, gx.. = owned rows, tail = bottom halo.
            let mut pv = vec![0.0f64; nloc];
            let (mut x, mut r): (Vec<f64>, Vec<f64>) = (vec![0.0; nloc], vec![1.0; nloc]);
            let mut z: Vec<f64> = r.iter().map(|v| v / 4.0).collect();
            pv.copy_from_slice(&z);
            let mut q = vec![0.0f64; nloc];

            let local_dot =
                |a: &[f64], b: &[f64]| -> f64 { a.iter().zip(b).map(|(x, y)| x * y).sum() };
            let mut rho = cell.reduce_sum_f64(local_dot(&r, &z));
            let mut rr = cell.reduce_sum_f64(local_dot(&r, &r));
            let mut iters = 0usize;

            while iters < cfg.max_iters && rr.sqrt() > cfg.tol {
                // ---- halo exchange for pv --------------------------------
                // Up: PUT my first row into the upper neighbour's bottom halo.
                if has_up {
                    cell.write_slice(out_row, &pv[0..gx]);
                    cell.put(
                        me - 1,
                        halo_bot,
                        out_row,
                        (gx * 8) as u64,
                        VAddr::NULL,
                        put_flag,
                        false,
                    );
                }
                // Down: SEND my last row to the lower neighbour.
                if has_dn {
                    cell.write_slice(out_row, &pv[(nrows - 1) * gx..]);
                    cell.send(me + 1, out_row, (gx * 8) as u64);
                }
                let top = if has_up {
                    cell.recv_slice::<f64>(me - 1, halo_top, (gx * 8) as u64, gx)
                        .1
                } else {
                    vec![0.0; gx]
                };
                let bot = if has_dn {
                    puts_seen += 1;
                    cell.wait_flag(put_flag, puts_seen);
                    cell.read_slice::<f64>(halo_bot, gx)
                } else {
                    vec![0.0; gx]
                };

                // ---- q = A p on my band ----------------------------------
                for yy in 0..nrows {
                    for xx in 0..gx {
                        let i = yy * gx + xx;
                        let mut s = 4.0 * pv[i];
                        if xx > 0 {
                            s -= pv[i - 1];
                        }
                        if xx + 1 < gx {
                            s -= pv[i + 1];
                        }
                        if yy > 0 {
                            s -= pv[i - gx];
                        } else if has_up {
                            s -= top[xx];
                        }
                        if yy + 1 < nrows {
                            s -= pv[i + gx];
                        } else if has_dn {
                            s -= bot[xx];
                        }
                        q[i] = s;
                    }
                }
                cell.work(10 * nloc as u64);

                // ---- scalar reductions & updates -------------------------
                let pq = cell.reduce_sum_f64(local_dot(&pv, &q));
                let alpha = rho / pq;
                for i in 0..nloc {
                    x[i] += alpha * pv[i];
                    r[i] -= alpha * q[i];
                    z[i] = r[i] / 4.0;
                }
                cell.work(5 * nloc as u64);
                let rho_new = cell.reduce_sum_f64(local_dot(&r, &z));
                rr = rho_new * 4.0;
                let beta = rho_new / rho;
                rho = rho_new;
                for i in 0..nloc {
                    pv[i] = z[i] + beta * pv[i];
                }
                cell.work(2 * nloc as u64);
                iters += 1;
            }
            // The single barrier of Table 3's SCG row.
            cell.barrier();

            // ---- verification ----------------------------------------
            let (ref_x, ref_iters) = &*reference;
            assert_eq!(iters, *ref_iters, "cell {me}: iteration count diverged");
            assert!(rr.sqrt() <= cfg.tol || iters == cfg.max_iters);
            for yy in 0..nrows {
                for xx in 0..gx {
                    let got = x[yy * gx + xx];
                    let want = ref_x[(ylo + yy) * gx + xx];
                    assert!(
                        (got - want).abs() < 1e-6 * want.abs().max(1.0),
                        "cell {me}: x({xx},{}) = {got} vs {want}",
                        ylo + yy
                    );
                }
            }
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use aptrace::AppStats;

    #[test]
    fn scg_verifies_with_table3_shape() {
        let cfg = Scg::new(Scale::Test);
        let report = cfg.run().unwrap();
        let row = AppStats::from_trace(&report.trace).to_row();
        let stats = AppStats::from_trace(&report.trace);
        // SENDs ≈ PUTs (both are (P-1)/P per iteration on average).
        assert!(
            (row.send - row.put).abs() < 1e-9,
            "send {} vs put {}",
            row.send,
            row.put
        );
        assert!(row.put > 0.0);
        // Exactly one barrier in the whole run.
        assert_eq!(row.sync, 1.0);
        // Message size = one grid row.
        assert_eq!(row.msg_size, (cfg.gx * 8) as f64);
        // ~2 Gops per iteration (plus the 2 initial ones).
        assert!(row.gop > 2.0);
        assert_eq!(stats.ack_gets, 0, "C app: flag sync, no acks");
    }

    #[test]
    fn reference_converges() {
        let cfg = Scg::new(Scale::Test);
        let (x, iters, rr) = cfg.reference();
        assert!(iters < cfg.max_iters, "did not converge in {iters}");
        assert!(rr.sqrt() <= cfg.tol * 4.0);
        // Check A x = 1 directly.
        let a = Csr::poisson_5pt(cfg.gx, cfg.gy);
        let mut ax = vec![0.0; a.n];
        a.matvec(&x, &mut ax);
        for v in &ax {
            assert!((v - 1.0).abs() < 1e-5);
        }
    }
}

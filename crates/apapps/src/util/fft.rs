//! Iterative radix-2 complex FFT.
//!
//! Small, allocation-free, and exact enough for FT's round-trip and
//! checksum validation. Complex numbers are `(re, im)` pairs in
//! interleaved `f64` slices, matching how FT stages them in simulated
//! memory.

use std::f64::consts::PI;

/// In-place FFT of `n` complex values stored interleaved in `buf`
/// (`buf.len() == 2 * n`). `inverse` selects the inverse transform
/// (including the `1/n` scaling).
///
/// # Panics
///
/// Panics if `n` is not a power of two or `buf.len() != 2 * n`.
pub fn fft_inplace(buf: &mut [f64], n: usize, inverse: bool) {
    assert!(n.is_power_of_two(), "FFT size {n} must be a power of two");
    assert_eq!(buf.len(), 2 * n, "interleaved complex buffer length");
    // Bit-reversal permutation.
    let bits = n.trailing_zeros();
    for i in 0..n {
        let j = (i as u32).reverse_bits() >> (32 - bits);
        let j = j as usize;
        if j > i {
            buf.swap(2 * i, 2 * j);
            buf.swap(2 * i + 1, 2 * j + 1);
        }
    }
    // Butterflies.
    let sign = if inverse { 1.0 } else { -1.0 };
    let mut len = 2;
    while len <= n {
        let ang = sign * 2.0 * PI / len as f64;
        let (wr, wi) = (ang.cos(), ang.sin());
        for start in (0..n).step_by(len) {
            let (mut cr, mut ci) = (1.0f64, 0.0f64);
            for k in 0..len / 2 {
                let a = start + k;
                let b = start + k + len / 2;
                let (ar, ai) = (buf[2 * a], buf[2 * a + 1]);
                let (br, bi) = (buf[2 * b], buf[2 * b + 1]);
                let (tr, ti) = (br * cr - bi * ci, br * ci + bi * cr);
                buf[2 * a] = ar + tr;
                buf[2 * a + 1] = ai + ti;
                buf[2 * b] = ar - tr;
                buf[2 * b + 1] = ai - ti;
                let (ncr, nci) = (cr * wr - ci * wi, cr * wi + ci * wr);
                cr = ncr;
                ci = nci;
            }
        }
        len <<= 1;
    }
    if inverse {
        let scale = 1.0 / n as f64;
        for v in buf.iter_mut() {
            *v *= scale;
        }
    }
}

/// Number of floating-point operations of one radix-2 FFT of size `n`
/// (the standard `5 n log2 n` count), for `work()` accounting.
pub fn fft_flops(n: usize) -> u64 {
    if n <= 1 {
        return 0;
    }
    5 * n as u64 * n.trailing_zeros() as u64
}

#[cfg(test)]
mod tests {
    use super::*;

    fn naive_dft(input: &[f64], n: usize) -> Vec<f64> {
        let mut out = vec![0.0; 2 * n];
        for k in 0..n {
            let (mut sr, mut si) = (0.0f64, 0.0f64);
            for j in 0..n {
                let ang = -2.0 * PI * (k * j) as f64 / n as f64;
                let (re, im) = (input[2 * j], input[2 * j + 1]);
                sr += re * ang.cos() - im * ang.sin();
                si += re * ang.sin() + im * ang.cos();
            }
            out[2 * k] = sr;
            out[2 * k + 1] = si;
        }
        out
    }

    #[test]
    fn matches_naive_dft() {
        let n = 32;
        let mut buf: Vec<f64> = (0..2 * n)
            .map(|i| ((i * 7919) % 1000) as f64 / 1000.0)
            .collect();
        let reference = naive_dft(&buf, n);
        fft_inplace(&mut buf, n, false);
        for (a, b) in buf.iter().zip(&reference) {
            assert!((a - b).abs() < 1e-9, "{a} vs {b}");
        }
    }

    #[test]
    fn round_trip_is_identity() {
        let n = 256;
        let orig: Vec<f64> = (0..2 * n).map(|i| (i as f64).sin()).collect();
        let mut buf = orig.clone();
        fft_inplace(&mut buf, n, false);
        fft_inplace(&mut buf, n, true);
        for (a, b) in buf.iter().zip(&orig) {
            assert!((a - b).abs() < 1e-10);
        }
    }

    #[test]
    fn impulse_transforms_to_constant() {
        let n = 8;
        let mut buf = vec![0.0; 2 * n];
        buf[0] = 1.0;
        fft_inplace(&mut buf, n, false);
        for k in 0..n {
            assert!((buf[2 * k] - 1.0).abs() < 1e-12);
            assert!(buf[2 * k + 1].abs() < 1e-12);
        }
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn non_power_of_two_panics() {
        let mut buf = vec![0.0; 6];
        fft_inplace(&mut buf, 3, false);
    }

    #[test]
    fn flop_count_formula() {
        assert_eq!(fft_flops(8), 5 * 8 * 3);
        assert_eq!(fft_flops(1), 0);
    }
}

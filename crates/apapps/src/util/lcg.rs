//! The NAS Parallel Benchmarks linear congruential generator.
//!
//! NPB specifies `x_{k+1} = a · x_k mod 2^46` with `a = 5^13` and seed
//! `271828183`. Its key property for parallel use is the `O(log k)` skip:
//! any PE can jump straight to its slice of the stream, which is exactly
//! how EP distributes work with zero communication.

/// NPB multiplier `5^13`.
pub const A: u64 = 1_220_703_125;
/// NPB default seed.
pub const SEED: u64 = 271_828_183;
const M46: u64 = (1 << 46) - 1;

/// The 46-bit NPB LCG.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct NpbRandom {
    x: u64,
}

impl NpbRandom {
    /// Starts the stream at `seed` (only the low 46 bits are used).
    pub fn new(seed: u64) -> Self {
        NpbRandom { x: seed & M46 }
    }

    /// Starts at position `k` of the stream from `seed`, in `O(log k)`.
    pub fn skip_to(seed: u64, k: u64) -> Self {
        // x_k = a^k * seed mod 2^46.
        let ak = pow_mod46(A, k);
        NpbRandom {
            x: mul_mod46(ak, seed & M46),
        }
    }

    /// Next uniform deviate in `(0, 1)`.
    pub fn next_f64(&mut self) -> f64 {
        self.x = mul_mod46(A, self.x);
        self.x as f64 / (1u64 << 46) as f64
    }

    /// Raw 46-bit state (for tests).
    pub fn state(&self) -> u64 {
        self.x
    }
}

#[inline]
fn mul_mod46(a: u64, b: u64) -> u64 {
    // 46-bit × 46-bit fits in u128.
    ((a as u128 * b as u128) & M46 as u128) as u64
}

fn pow_mod46(mut base: u64, mut exp: u64) -> u64 {
    let mut acc = 1u64;
    base &= M46;
    while exp > 0 {
        if exp & 1 == 1 {
            acc = mul_mod46(acc, base);
        }
        base = mul_mod46(base, base);
        exp >>= 1;
    }
    acc
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn skip_matches_sequential() {
        let mut seq = NpbRandom::new(SEED);
        for _ in 0..1000 {
            seq.next_f64();
        }
        let skipped = NpbRandom::skip_to(SEED, 1000);
        assert_eq!(seq.state(), skipped.state());
    }

    #[test]
    fn deviates_are_in_unit_interval() {
        let mut r = NpbRandom::new(SEED);
        for _ in 0..10_000 {
            let x = r.next_f64();
            assert!(x > 0.0 && x < 1.0);
        }
    }

    #[test]
    fn partitioned_streams_tile_the_sequence() {
        // 4 PEs × 250 numbers == 1000 sequential numbers.
        let mut seq = Vec::new();
        let mut r = NpbRandom::new(SEED);
        for _ in 0..1000 {
            seq.push(r.next_f64());
        }
        let mut par = Vec::new();
        for pe in 0..4u64 {
            let mut r = NpbRandom::skip_to(SEED, pe * 250);
            for _ in 0..250 {
                par.push(r.next_f64());
            }
        }
        assert_eq!(seq, par);
    }

    #[test]
    fn mean_is_about_half() {
        let mut r = NpbRandom::new(SEED);
        let n = 100_000;
        let mean: f64 = (0..n).map(|_| r.next_f64()).sum::<f64>() / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean {mean}");
    }
}

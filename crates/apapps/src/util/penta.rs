//! Pentadiagonal line solver (the "scalar pentadiagonal" of NPB SP).
//!
//! Solves `A x = d` where `A` has bands at offsets −2..2, by Gaussian
//! elimination without pivoting — valid for the diagonally dominant
//! systems ADI sweeps produce.
//!
//! The row-level steps [`eliminate_step`] and [`back_step`] are exposed
//! separately because SP's **distributed** z-sweep pipelines exactly these
//! across cells: a forward pass hands the next cell the last two
//! eliminated rows, a backward pass hands the previous cell the first two
//! solution values. Sequential [`Penta::solve`] is built from the same
//! steps, so the distributed solver is bit-identical to the reference.

/// An eliminated row: `[diag, sup1, sup2, rhs]` after removing both
/// sub-diagonals.
pub type WRow = [f64; 4];

/// Eliminates row `i` given its raw bands `[a2, a1, d, c1, c2]`, raw rhs,
/// and the two previously eliminated rows (`None` at the top boundary).
///
/// # Panics
///
/// Panics (via non-finite checks in debug) only on singular systems;
/// diagonally dominant inputs are always safe.
pub fn eliminate_step(prev2: Option<&WRow>, prev1: Option<&WRow>, row: [f64; 5], rhs: f64) -> WRow {
    let mut a1 = row[1];
    let mut d = row[2];
    let c1 = row[3];
    let c2 = row[4];
    let mut b = rhs;
    if let Some(p2) = prev2 {
        let f = row[0] / p2[0];
        a1 -= f * p2[1];
        d -= f * p2[2];
        b -= f * p2[3];
    }
    if let Some(p1) = prev1 {
        let f = a1 / p1[0];
        d -= f * p1[1];
        return [d, c1 - f * p1[2], c2, b - f * p1[3]];
    }
    [d, c1, c2, b]
}

/// Back-substitutes one row: `x_i` from its eliminated row and the two
/// following solution values (`None` at the bottom boundary).
pub fn back_step(w: &WRow, x1: Option<f64>, x2: Option<f64>) -> f64 {
    let mut v = w[3];
    if let Some(x) = x1 {
        v -= w[1] * x;
    }
    if let Some(x) = x2 {
        v -= w[2] * x;
    }
    v / w[0]
}

/// A pentadiagonal system of `n` rows; row `i` holds
/// `[a2, a1, d, c1, c2]` = offsets `[-2, -1, 0, +1, +2]`, plus `rhs`.
#[derive(Clone, Debug, PartialEq)]
pub struct Penta {
    /// Band coefficients per row.
    pub rows: Vec<[f64; 5]>,
    /// Right-hand side.
    pub rhs: Vec<f64>,
}

impl Penta {
    /// A diagonally dominant test system from a deterministic pattern.
    pub fn diagonally_dominant(n: usize, seed: u64) -> Self {
        let mut rows = Vec::with_capacity(n);
        let mut rhs = Vec::with_capacity(n);
        let mut s = seed.wrapping_mul(0x9e37_79b9_7f4a_7c15) | 1;
        let mut next = move || {
            s ^= s << 13;
            s ^= s >> 7;
            s ^= s << 17;
            (s % 1000) as f64 / 1000.0 - 0.5
        };
        for _ in 0..n {
            let (a2, a1, c1, c2) = (next(), next(), next(), next());
            let d = 4.0 + a2.abs() + a1.abs() + c1.abs() + c2.abs();
            rows.push([a2, a1, d, c1, c2]);
            rhs.push(next() * 10.0);
        }
        Penta { rows, rhs }
    }

    /// Direct sequential solve (reference for the pipelined version).
    pub fn solve(&self) -> Vec<f64> {
        let n = self.rows.len();
        let mut w: Vec<WRow> = Vec::with_capacity(n);
        for i in 0..n {
            let prev1 = if i >= 1 { Some(&w[i - 1]) } else { None };
            let prev2 = if i >= 2 { Some(&w[i - 2]) } else { None };
            let row = eliminate_step(prev2, prev1, self.rows[i], self.rhs[i]);
            w.push(row);
        }
        let mut x = vec![0.0; n];
        for i in (0..n).rev() {
            let x1 = if i + 1 < n { Some(x[i + 1]) } else { None };
            let x2 = if i + 2 < n { Some(x[i + 2]) } else { None };
            x[i] = back_step(&w[i], x1, x2);
        }
        x
    }

    /// Residual max-norm `‖A x − rhs‖∞` of a candidate solution.
    pub fn residual(&self, x: &[f64]) -> f64 {
        let n = self.rows.len();
        let mut worst = 0.0f64;
        for i in 0..n {
            let r = self.rows[i];
            let mut v = r[2] * x[i];
            if i >= 2 {
                v += r[0] * x[i - 2];
            }
            if i >= 1 {
                v += r[1] * x[i - 1];
            }
            if i + 1 < n {
                v += r[3] * x[i + 1];
            }
            if i + 2 < n {
                v += r[4] * x[i + 2];
            }
            worst = worst.max((v - self.rhs[i]).abs());
        }
        worst
    }
}

/// Approximate flop count of one pentadiagonal solve of length `n`
/// (elimination + back substitution), for `work()` accounting.
pub fn penta_flops(n: usize) -> u64 {
    19 * n as u64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn solves_identity() {
        let n = 10;
        let p = Penta {
            rows: vec![[0.0, 0.0, 1.0, 0.0, 0.0]; n],
            rhs: (0..n).map(|i| i as f64).collect(),
        };
        let x = p.solve();
        assert_eq!(x, (0..n).map(|i| i as f64).collect::<Vec<_>>());
    }

    #[test]
    fn random_dominant_system_solves_accurately() {
        for seed in [1, 7, 42] {
            let p = Penta::diagonally_dominant(64, seed);
            let x = p.solve();
            assert!(p.residual(&x) < 1e-9, "residual {}", p.residual(&x));
        }
    }

    #[test]
    fn tiny_systems() {
        for n in 1..=4 {
            let p = Penta::diagonally_dominant(n, 5);
            let x = p.solve();
            assert!(p.residual(&x) < 1e-10, "n={n}");
        }
    }

    #[test]
    fn pipelined_elimination_equals_sequential() {
        // Split a 40-row system into 4 chunks of 10 and run the chunked
        // (carry-passing) elimination — must be bit-identical to solve().
        let p = Penta::diagonally_dominant(40, 9);
        let expected = p.solve();
        let mut w: Vec<WRow> = Vec::new();
        // Forward across chunks: the carry is just the last two w rows.
        for chunk in 0..4 {
            for i in chunk * 10..(chunk + 1) * 10 {
                let prev1 = if i >= 1 { Some(&w[i - 1]) } else { None };
                let prev2 = if i >= 2 { Some(&w[i - 2]) } else { None };
                let row = eliminate_step(prev2, prev1, p.rows[i], p.rhs[i]);
                w.push(row);
            }
        }
        let mut x = vec![0.0; 40];
        for chunk in (0..4).rev() {
            for i in (chunk * 10..(chunk + 1) * 10).rev() {
                let x1 = if i + 1 < 40 { Some(x[i + 1]) } else { None };
                let x2 = if i + 2 < 40 { Some(x[i + 2]) } else { None };
                x[i] = back_step(&w[i], x1, x2);
            }
        }
        assert_eq!(x, expected);
    }

    #[test]
    fn flops_formula() {
        assert_eq!(penta_flops(10), 190);
    }
}

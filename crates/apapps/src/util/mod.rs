//! Numeric building blocks shared by the workloads: the NPB linear
//! congruential generator, a radix-2 complex FFT, a pentadiagonal solver,
//! and sparse-matrix helpers.

pub mod fft;
pub mod lcg;
pub mod penta;
pub mod sparse;

//! Sparse matrices for CG and SCG.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// Compressed-sparse-row symmetric positive-definite matrix.
#[derive(Clone, Debug, PartialEq)]
pub struct Csr {
    /// Matrix order.
    pub n: usize,
    /// Row pointers (`n + 1` entries).
    pub row_ptr: Vec<usize>,
    /// Column indices.
    pub cols: Vec<usize>,
    /// Values.
    pub vals: Vec<f64>,
}

impl Csr {
    /// Number of stored nonzeros.
    pub fn nnz(&self) -> usize {
        self.vals.len()
    }

    /// `y = A x` (dense vectors).
    ///
    /// # Panics
    ///
    /// Panics if the vector lengths don't match `n`.
    pub fn matvec(&self, x: &[f64], y: &mut [f64]) {
        assert_eq!(x.len(), self.n);
        assert_eq!(y.len(), self.n);
        for (i, out) in y.iter_mut().enumerate() {
            let mut s = 0.0;
            for k in self.row_ptr[i]..self.row_ptr[i + 1] {
                s += self.vals[k] * x[self.cols[k]];
            }
            *out = s;
        }
    }

    /// Rows `[lo, hi)` of `A x` only (a PE's partial matvec).
    pub fn matvec_rows(&self, x: &[f64], lo: usize, hi: usize, y: &mut [f64]) {
        for i in lo..hi {
            let mut s = 0.0;
            for k in self.row_ptr[i]..self.row_ptr[i + 1] {
                s += self.vals[k] * x[self.cols[k]];
            }
            y[i - lo] = s;
        }
    }

    /// Deterministic random sparse SPD matrix: ~`per_row` symmetric
    /// off-diagonal entries per row plus a dominant diagonal — the CG
    /// benchmark's "random pattern" at adjustable scale.
    pub fn random_spd(n: usize, per_row: usize, seed: u64) -> Self {
        let mut rng = SmallRng::seed_from_u64(seed);
        // Collect symmetric off-diagonal entries per row.
        let mut entries: Vec<Vec<(usize, f64)>> = vec![Vec::new(); n];
        #[allow(clippy::needless_range_loop)] // symmetric inserts touch entries[j] too
        for i in 0..n {
            for _ in 0..per_row / 2 {
                let j = rng.gen_range(0..n);
                if j != i {
                    let v = rng.gen_range(-1.0..1.0);
                    entries[i].push((j, v));
                    entries[j].push((i, v));
                }
            }
        }
        let mut row_ptr = Vec::with_capacity(n + 1);
        let mut cols = Vec::new();
        let mut vals = Vec::new();
        row_ptr.push(0);
        for (i, row) in entries.iter_mut().enumerate() {
            row.sort_by_key(|&(j, _)| j);
            row.dedup_by_key(|&mut (j, _)| j);
            let offdiag_sum: f64 = row.iter().map(|&(_, v)| v.abs()).sum();
            // Diagonal dominance => SPD for a symmetric matrix.
            let mut inserted_diag = false;
            for &(j, v) in row.iter() {
                if j > i && !inserted_diag {
                    cols.push(i);
                    vals.push(offdiag_sum + 1.0);
                    inserted_diag = true;
                }
                cols.push(j);
                vals.push(v);
            }
            if !inserted_diag {
                cols.push(i);
                vals.push(offdiag_sum + 1.0);
            }
            row_ptr.push(cols.len());
        }
        Csr {
            n,
            row_ptr,
            cols,
            vals,
        }
    }

    /// 5-point Poisson operator on an `nx × ny` grid (SCG's system:
    /// 40000×40000 from a 200×200 grid in the paper).
    pub fn poisson_5pt(nx: usize, ny: usize) -> Self {
        let n = nx * ny;
        let idx = |x: usize, y: usize| y * nx + x;
        let mut row_ptr = Vec::with_capacity(n + 1);
        let mut cols = Vec::new();
        let mut vals = Vec::new();
        row_ptr.push(0);
        for y in 0..ny {
            for x in 0..nx {
                let mut push = |c: usize, v: f64| {
                    cols.push(c);
                    vals.push(v);
                };
                if y > 0 {
                    push(idx(x, y - 1), -1.0);
                }
                if x > 0 {
                    push(idx(x - 1, y), -1.0);
                }
                push(idx(x, y), 4.0);
                if x + 1 < nx {
                    push(idx(x + 1, y), -1.0);
                }
                if y + 1 < ny {
                    push(idx(x, y + 1), -1.0);
                }
                row_ptr.push(cols.len());
            }
        }
        Csr {
            n,
            row_ptr,
            cols,
            vals,
        }
    }
}

/// Sequential conjugate gradient (reference for CG/SCG validation).
/// Returns `(solution, iterations, final residual norm²)`.
pub fn cg_reference(a: &Csr, b: &[f64], max_iter: usize, tol: f64) -> (Vec<f64>, usize, f64) {
    let n = a.n;
    let mut x = vec![0.0; n];
    let mut r = b.to_vec();
    let mut p = r.clone();
    let mut q = vec![0.0; n];
    let mut rr: f64 = r.iter().map(|v| v * v).sum();
    let mut iters = 0;
    while iters < max_iter && rr.sqrt() > tol {
        a.matvec(&p, &mut q);
        let pq: f64 = p.iter().zip(&q).map(|(a, b)| a * b).sum();
        let alpha = rr / pq;
        for i in 0..n {
            x[i] += alpha * p[i];
            r[i] -= alpha * q[i];
        }
        let rr_new: f64 = r.iter().map(|v| v * v).sum();
        let beta = rr_new / rr;
        for i in 0..n {
            p[i] = r[i] + beta * p[i];
        }
        rr = rr_new;
        iters += 1;
    }
    (x, iters, rr)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    #[allow(clippy::needless_range_loop)]
    fn random_spd_is_symmetric_and_dominant() {
        let a = Csr::random_spd(100, 8, 1);
        // Build a dense mirror to check symmetry.
        let mut dense = vec![vec![0.0f64; a.n]; a.n];
        for i in 0..a.n {
            for k in a.row_ptr[i]..a.row_ptr[i + 1] {
                dense[i][a.cols[k]] = a.vals[k];
            }
        }
        for i in 0..a.n {
            let mut off = 0.0;
            for j in 0..a.n {
                if i != j {
                    assert_eq!(dense[i][j], dense[j][i], "asymmetry at ({i},{j})");
                    off += dense[i][j].abs();
                }
            }
            assert!(dense[i][i] > off, "row {i} not dominant");
        }
    }

    #[test]
    fn poisson_rows_sum_to_small_nonnegative() {
        let a = Csr::poisson_5pt(5, 4);
        assert_eq!(a.n, 20);
        for i in 0..a.n {
            let s: f64 = (a.row_ptr[i]..a.row_ptr[i + 1]).map(|k| a.vals[k]).sum();
            assert!(s >= 0.0, "row {i} sums to {s}");
        }
    }

    #[test]
    fn cg_solves_poisson() {
        let a = Csr::poisson_5pt(16, 16);
        let b = vec![1.0; a.n];
        let (x, iters, rr) = cg_reference(&a, &b, 1000, 1e-10);
        assert!(rr.sqrt() < 1e-10, "residual {}", rr.sqrt());
        assert!(iters > 5 && iters < 1000);
        // Check A x = b directly.
        let mut ax = vec![0.0; a.n];
        a.matvec(&x, &mut ax);
        for (l, r) in ax.iter().zip(&b) {
            assert!((l - r).abs() < 1e-8);
        }
    }

    #[test]
    fn matvec_rows_matches_full() {
        let a = Csr::random_spd(60, 6, 3);
        let x: Vec<f64> = (0..60).map(|i| (i as f64).cos()).collect();
        let mut full = vec![0.0; 60];
        a.matvec(&x, &mut full);
        let mut part = vec![0.0; 20];
        a.matvec_rows(&x, 20, 40, &mut part);
        assert_eq!(&full[20..40], &part[..]);
    }
}

//! NPB CG — conjugate gradient eigenvalue estimation.
//!
//! §5.2: *"CG is the conjugate gradient method for solving a linear
//! system of equations. The order of the input matrix is 1400 with 78184
//! nonzero elements."* The matrix is column-partitioned; every matrix ×
//! vector product produces a **full-length partial vector** that must be
//! summed across cells — the *vector global summation* whose 11 200-byte
//! messages dominate CG's time and make it the paper's worst case (§5.4).
//!
//! The vector reduction follows §4.5's ring-buffer scheme: the running
//! partial travels the SEND/RECEIVE ring once (P−1 blocking SENDs — Table
//! 3's 365.6 SENDs = 390 VGops × 15/16), and the last cell PUTs each
//! cell's 700-byte block of the total back to its owner (Table 3's 390
//! PUTs of 700 bytes). Scalar α/β reductions use the communication
//! registers (Table 3's 810 Gops = 15 outer × (2·25 inner + 4)).

use crate::util::sparse::Csr;
use crate::{Scale, Workload};
use apcore::{run_with_faults, ApResult, Cell, FaultSpec, MachineConfig, RunReport, VAddr};
use std::sync::Arc;

/// CG instance.
#[derive(Clone, Copy, Debug)]
pub struct Cg {
    /// Number of cells (16 in the paper).
    pub pe: u32,
    /// Matrix order (1400 in the paper).
    pub n: usize,
    /// Nonzeros per row (~56 in the paper: 78184/1400).
    pub per_row: usize,
    /// Outer (power-method) iterations — 15 in NPB.
    pub outer: usize,
    /// Inner CG iterations per outer — 25 in NPB.
    pub inner: usize,
    /// Stream the ring reduction in cell-block chunks instead of
    /// store-and-forwarding the whole vector per hop. §4.5 describes the
    /// ring-buffer reduction as processing data "directly" from the ring
    /// buffer, i.e. streaming; the default here is the conservative
    /// store-and-forward, and this flag is the ablation that shows what
    /// streaming buys (it multiplies the per-gop SEND count by the chunk
    /// count, so Table 3 is reported with it off).
    pub streamed_ring: bool,
}

impl Cg {
    /// Standard instance at `scale`.
    pub fn new(scale: Scale) -> Self {
        match scale {
            Scale::Test => Cg {
                pe: 4,
                n: 64,
                per_row: 8,
                outer: 3,
                inner: 5,
                streamed_ring: false,
            },
            Scale::Paper => Cg {
                pe: 16,
                n: 1400,
                per_row: 56,
                outer: 15,
                inner: 25,
                streamed_ring: false,
            },
        }
    }

    /// The sequential reference: the identical algorithm with sequential
    /// reductions; returns the zeta estimate per outer iteration.
    pub fn reference(&self) -> Vec<f64> {
        let a = Csr::random_spd(self.n, self.per_row, 0xC6);
        let n = self.n;
        let mut x = vec![1.0f64; n];
        let mut zetas = Vec::new();
        for _ in 0..self.outer {
            // Inner CG: solve A z = x approximately.
            let mut z = vec![0.0f64; n];
            let mut r = x.clone();
            let mut p = r.clone();
            let mut q = vec![0.0f64; n];
            let mut rho: f64 = r.iter().map(|v| v * v).sum();
            for _ in 0..self.inner {
                a.matvec(&p, &mut q);
                let d: f64 = p.iter().zip(&q).map(|(a, b)| a * b).sum();
                let alpha = rho / d;
                for i in 0..n {
                    z[i] += alpha * p[i];
                    r[i] -= alpha * q[i];
                }
                let rho_new: f64 = r.iter().map(|v| v * v).sum();
                let beta = rho_new / rho;
                rho = rho_new;
                for i in 0..n {
                    p[i] = r[i] + beta * p[i];
                }
            }
            // Residual ||x - A z|| and the eigenvalue estimate.
            a.matvec(&z, &mut q);
            let resid: f64 = x
                .iter()
                .zip(&q)
                .map(|(a, b)| (a - b) * (a - b))
                .sum::<f64>();
            let xz: f64 = x.iter().zip(&z).map(|(a, b)| a * b).sum();
            let znorm: f64 = z.iter().map(|v| v * v).sum::<f64>().sqrt();
            zetas.push(1.0 / xz + resid.sqrt());
            for i in 0..n {
                x[i] = z[i] / znorm;
            }
        }
        zetas
    }
}

/// Block bounds of `pe` in a `1..n` split over `p` cells.
fn block(n: usize, p: usize, pe: usize) -> (usize, usize) {
    let chunk = n.div_ceil(p);
    ((pe * chunk).min(n), ((pe + 1) * chunk).min(n))
}

/// Ring reduce-scatter of §4.5: input a full-length partial vector;
/// output is the summed vector's own block, with the full sum optionally
/// visible to the caller via the returned vector. `scratch`/`flag` are
/// reusable simulated buffers.
#[allow(clippy::too_many_arguments)]
fn ring_reduce_scatter(
    cell: &mut Cell,
    xs: &mut [f64],
    scratch: VAddr,
    blocks: VAddr,
    flag: VAddr,
    vgops_done: &mut u32,
    streamed: bool,
) {
    cell.mark_gop_vector();
    let me = cell.id();
    let p = cell.ncells();
    let n = xs.len();
    let bytes = (n * 8) as u64;
    if p > 1 {
        // Chunking: 1 chunk = store-and-forward (one SEND per hop, the
        // Table-3 shape); more chunks pipeline the ring like the paper's
        // "executes the data of the ring buffer directly" streaming.
        let nchunks = if streamed { p.min(n) } else { 1 };
        let chunk = n.div_ceil(nchunks);
        for c in 0..nchunks {
            let lo = (c * chunk).min(n);
            let hi = ((c + 1) * chunk).min(n);
            if hi == lo {
                continue;
            }
            let addr = scratch + (lo * 8) as u64;
            let cbytes = ((hi - lo) * 8) as u64;
            if me == 0 {
                cell.write_slice(addr, &xs[lo..hi]);
                cell.send(1, addr, cbytes);
            } else {
                let (_, mut partial) = cell.recv_slice::<f64>(me - 1, addr, cbytes, hi - lo);
                for (acc, x) in partial.iter_mut().zip(xs[lo..hi].iter()) {
                    *acc += *x;
                }
                cell.work((hi - lo) as u64);
                cell.write_slice(addr, &partial);
                if me < p - 1 {
                    cell.send(me + 1, addr, cbytes);
                }
            }
        }
        let _ = bytes;
        // Last cell owns the total: PUT each owner its block (the 700-byte
        // messages of Table 3). Acknowledged per the VPP run-time system.
        if me == p - 1 {
            for owner in 0..p {
                let (lo, hi) = block(n, p, owner);
                if hi > lo {
                    cell.rts(4);
                    cell.put(
                        owner,
                        blocks,
                        scratch + (lo * 8) as u64,
                        ((hi - lo) * 8) as u64,
                        VAddr::NULL,
                        flag,
                        true,
                    );
                }
            }
            cell.wait_acks();
        }
        *vgops_done += 1;
        let (lo, hi) = block(n, p, me);
        // On machines bigger than the matrix (pe > n) the tail cells own
        // an empty block: no PUT ever targets them, so they must not wait
        // for the flag — that was a guaranteed deadlock at 4096 cells.
        if hi > lo {
            cell.wait_flag(flag, *vgops_done);
            let mine = cell.read_slice::<f64>(blocks, hi - lo);
            xs[lo..hi].copy_from_slice(&mine);
        }
    }
}

impl Cg {
    /// Shared body of [`Workload::run`] and [`Workload::run_faulted`]:
    /// the same SPMD program, with or without an injected fault schedule.
    /// Either way, `Ok` means every cell's zeta sequence matched the
    /// sequential reference — recovery must be numerically invisible.
    fn run_inner(&self, faults: Option<&FaultSpec>) -> ApResult<RunReport<()>> {
        let cfg = *self;
        let a = Arc::new(Csr::random_spd(cfg.n, cfg.per_row, 0xC6));
        let reference = Arc::new(cfg.reference());
        run_with_faults(MachineConfig::new(cfg.pe), faults, move |cell| {
            let me = cell.id();
            let p = cell.ncells();
            let n = cfg.n;
            let (lo, hi) = block(n, p, me);
            let nb = hi - lo;
            // Simulated buffers for the ring protocol.
            let scratch = cell.alloc::<f64>(n);
            let blocks = cell.alloc::<f64>(n.div_ceil(p));
            let flag = cell.alloc_flag();
            let mut vgops = 0u32;

            // Column block of A with column indices rebased to the block:
            // entry (i, j) kept iff lo <= j < hi.
            let mut rows = vec![Vec::new(); n];
            for (i, row) in rows.iter_mut().enumerate() {
                for k in a.row_ptr[i]..a.row_ptr[i + 1] {
                    let j = a.cols[k];
                    if j >= lo && j < hi {
                        row.push((j - lo, a.vals[k]));
                    }
                }
            }
            let nnz_block: usize = rows.iter().map(|r| r.len()).sum();

            // Distributed state: this cell's block of each vector.
            let mut x = vec![1.0f64; nb];
            let mut zetas = Vec::new();
            let mut q_full = vec![0.0f64; n];

            let matvec = |cell: &mut Cell,
                          v_block: &[f64],
                          q_full: &mut Vec<f64>,
                          vgops: &mut u32|
             -> Vec<f64> {
                for (i, row) in rows.iter().enumerate() {
                    let mut s = 0.0;
                    for &(j, val) in row {
                        s += val * v_block[j];
                    }
                    q_full[i] = s;
                }
                cell.work(2 * nnz_block as u64);
                cell.rts(2);
                ring_reduce_scatter(
                    cell,
                    q_full,
                    scratch,
                    blocks,
                    flag,
                    vgops,
                    cfg.streamed_ring,
                );
                q_full[lo..hi].to_vec()
            };

            for _ in 0..cfg.outer {
                let mut z = vec![0.0f64; nb];
                let mut r = x.clone();
                let mut pvec = r.clone();
                let local_rho: f64 = r.iter().map(|v| v * v).sum();
                cell.work(2 * nb as u64);
                let mut rho = cell.reduce_sum_f64(local_rho);
                for _ in 0..cfg.inner {
                    let q = matvec(cell, &pvec, &mut q_full, &mut vgops);
                    let local_d: f64 = pvec.iter().zip(&q).map(|(a, b)| a * b).sum();
                    cell.work(2 * nb as u64);
                    let d = cell.reduce_sum_f64(local_d);
                    let alpha = rho / d;
                    for i in 0..nb {
                        z[i] += alpha * pvec[i];
                        r[i] -= alpha * q[i];
                    }
                    cell.work(4 * nb as u64);
                    let local_rho_new: f64 = r.iter().map(|v| v * v).sum();
                    cell.work(2 * nb as u64);
                    let rho_new = cell.reduce_sum_f64(local_rho_new);
                    let beta = rho_new / rho;
                    rho = rho_new;
                    for i in 0..nb {
                        pvec[i] = r[i] + beta * pvec[i];
                    }
                    cell.work(2 * nb as u64);
                }
                let az = matvec(cell, &z, &mut q_full, &mut vgops);
                let local_resid: f64 = x.iter().zip(&az).map(|(a, b)| (a - b) * (a - b)).sum();
                let local_xz: f64 = x.iter().zip(&z).map(|(a, b)| a * b).sum();
                let local_zz: f64 = z.iter().map(|v| v * v).sum();
                cell.work(6 * nb as u64);
                let resid = cell.reduce_sum_f64(local_resid);
                let xz = cell.reduce_sum_f64(local_xz);
                let znorm = cell.reduce_sum_f64(local_zz).sqrt();
                zetas.push(1.0 / xz + resid.sqrt());
                for i in 0..nb {
                    x[i] = z[i] / znorm;
                }
                cell.work(nb as u64);
                cell.barrier();
            }

            // Verification against the sequential reference (reduction
            // trees reorder sums; allow relative tolerance).
            for (k, (got, want)) in zetas.iter().zip(reference.iter()).enumerate() {
                let rel = (got - want).abs() / want.abs().max(1e-30);
                assert!(
                    rel < 1e-6,
                    "cell {me}: zeta[{k}] = {got} vs reference {want} (rel {rel:e})"
                );
            }
        })
    }
}

impl Workload for Cg {
    fn name(&self) -> &'static str {
        "CG"
    }

    fn pe(&self) -> u32 {
        self.pe
    }

    fn is_vpp(&self) -> bool {
        true
    }

    fn run(&self) -> ApResult<RunReport<()>> {
        self.run_inner(None)
    }

    fn run_faulted(&self, faults: &FaultSpec) -> ApResult<RunReport<()>> {
        self.run_inner(Some(faults))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use aptrace::AppStats;

    #[test]
    fn cg_verifies_and_matches_table3_shape() {
        let cfg = Cg::new(Scale::Test);
        let report = cfg.run().unwrap();
        let s = AppStats::from_trace(&report.trace);
        let row = s.to_row();
        // VGops per PE = outer * (inner + 1).
        let expect_vgop = (cfg.outer * (cfg.inner + 1)) as f64;
        assert_eq!(row.vgop, expect_vgop);
        // Gops per PE = outer * (2*inner + 4).
        assert_eq!(row.gop, (cfg.outer * (2 * cfg.inner + 4)) as f64);
        // SENDs per PE = vgop * (P-1)/P — the ring structure.
        let p = cfg.pe as f64;
        assert!((row.send - expect_vgop * (p - 1.0) / p).abs() < 1e-9);
        // One PUT per vgop per PE on average (the scatter blocks).
        assert!((row.put - expect_vgop).abs() < 1e-9);
        assert_eq!(row.get, 0.0, "acknowledge GETs are excluded");
        // Message size ~ block bytes.
        let block_bytes = (cfg.n / cfg.pe as usize * 8) as f64;
        assert!(
            (row.msg_size - block_bytes).abs() < 1.0,
            "msg {} vs block {}",
            row.msg_size,
            block_bytes
        );
    }

    #[test]
    fn cg_survives_transient_outage_and_corruption() {
        use apcore::{CellId, FaultEvent, FaultKind, RecoveryParams, SimTime};
        // Link 1 -> 0 carries both the ring SEND 1 -> 2 (X-first route)
        // and the acks for ring SENDs 0 -> 1; downing it forces drops,
        // retries, and duplicate suppression. The corruption hits the
        // first ring SEND 0 -> 1.
        let spec = FaultSpec {
            seed: Some(0xC6),
            recovery: RecoveryParams::default(),
            events: vec![
                FaultEvent {
                    from: SimTime::ZERO,
                    until: SimTime::from_nanos(5_000_000),
                    kind: FaultKind::LinkDown {
                        from: CellId::new(1),
                        to: CellId::new(0),
                    },
                },
                FaultEvent {
                    from: SimTime::ZERO,
                    until: SimTime::from_nanos(1_000_000_000),
                    kind: FaultKind::Corrupt {
                        src: CellId::new(0),
                        dst: CellId::new(1),
                        count: 1,
                    },
                },
            ],
        };
        // `Ok` means every cell's zetas matched the sequential reference:
        // the recovery protocol was numerically invisible.
        let report = Cg::new(Scale::Test).run_faulted(&spec).unwrap();
        let r = report.fault.expect("faulted run carries a report");
        assert!(r.survived());
        assert!(r.corrupt_detected >= 1, "checksum caught the flip");
        assert!(r.total_retries() >= 1, "outage forced retransmissions");
        assert_eq!(report.counters.retries, r.total_retries());
    }

    #[test]
    fn reference_zetas_are_finite_and_converging() {
        let zetas = Cg::new(Scale::Test).reference();
        assert_eq!(zetas.len(), 3);
        assert!(zetas.iter().all(|z| z.is_finite()));
        // Residual shrinks across outer iterations: zeta stabilizes.
        let d1 = (zetas[1] - zetas[0]).abs();
        let d2 = (zetas[2] - zetas[1]).abs();
        assert!(d2 <= d1 * 2.0, "power iteration diverging: {zetas:?}");
    }
}

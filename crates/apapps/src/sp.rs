//! NPB SP — scalar pentadiagonal ADI solver.
//!
//! §5.2: *"SP computes the solution for scalar pentadiagonal equations …
//! on the 64×64×64 input array."* Each ADI iteration sweeps pentadiagonal
//! line solves along x, y, and z. The cube is Z-slab partitioned, so x and
//! y sweeps are local while the **z sweep pipelines across the cells**:
//! forward elimination hands the next cell the last two eliminated rows of
//! each line, back substitution hands the previous cell the first two
//! solution values — one medium-sized PUT per y-batch in each direction,
//! which is where SP's "many ~1.3 KB messages" (Table 3) come from.

use crate::util::penta::{back_step, eliminate_step, WRow};

/// Work charged per grid point per sweep. The real NPB SP solves five
/// coupled pentadiagonal systems with full coefficient assembly — about
/// 970 flops per point per iteration (102 Gflop for 400 iterations on the
/// 64³ class-A grid), i.e. ~320 per sweep; our simplified kernel computes
/// one system but charges the benchmark's cost so the compute/communicate
/// balance matches the paper's.
const SP_FLOPS_PER_POINT: u64 = 320;
use crate::{Scale, Workload};
use apcore::{run_with, ApResult, MachineConfig, RunReport, VAddr};
use std::sync::Arc;

/// SP instance: an `n × n × n` cube over `pe` cells (`pe` divides `n`).
#[derive(Clone, Copy, Debug)]
pub struct Sp {
    /// Number of cells (64 in the paper).
    pub pe: u32,
    /// Cube edge (64 in the paper).
    pub n: usize,
    /// ADI iterations (the paper simulated the first 10 of 400).
    pub iters: usize,
}

impl Sp {
    /// Standard instance at `scale`.
    pub fn new(scale: Scale) -> Self {
        match scale {
            Scale::Test => Sp {
                pe: 2,
                n: 8,
                iters: 2,
            },
            Scale::Paper => Sp {
                pe: 64,
                n: 64,
                iters: 4,
            },
        }
    }

    /// Pentadiagonal band coefficients at position `w` of a line in
    /// direction `dir` with line id `(u, v)` — deterministic, diagonally
    /// dominant.
    fn coeffs(dir: usize, u: usize, v: usize, w: usize, n: usize) -> [f64; 5] {
        let h = |a: usize, b: usize, c: usize, d: usize| -> f64 {
            let x = (a
                .wrapping_mul(2654435761)
                .wrapping_add(b.wrapping_mul(40503))
                .wrapping_add(c.wrapping_mul(97))
                .wrapping_add(d)) as u32;
            let x = x ^ (x >> 15);
            (x % 1000) as f64 / 1000.0 - 0.5
        };
        let a2 = if w >= 2 { h(dir, u, v, w * 4) } else { 0.0 };
        let a1 = if w >= 1 { h(dir, u, v, w * 4 + 1) } else { 0.0 };
        let c1 = if w + 1 < n {
            h(dir, u, v, w * 4 + 2)
        } else {
            0.0
        };
        let c2 = if w + 2 < n {
            h(dir, u, v, w * 4 + 3)
        } else {
            0.0
        };
        let d = 4.0 + a2.abs() + a1.abs() + c1.abs() + c2.abs();
        [a2, a1, d, c1, c2]
    }

    /// Initial field value at `(x, y, z)`.
    fn init_at(x: usize, y: usize, z: usize) -> f64 {
        ((x * 31 + y * 17 + z * 7) % 101) as f64 / 101.0 + 0.5
    }

    /// Sequential reference: the identical sweeps on the full cube;
    /// returns the final field in `(z, y, x)` order.
    pub fn reference(&self) -> Vec<f64> {
        let n = self.n;
        let idx = |x: usize, y: usize, z: usize| (z * n + y) * n + x;
        let mut f: Vec<f64> = vec![0.0; n * n * n];
        for z in 0..n {
            for y in 0..n {
                for x in 0..n {
                    f[idx(x, y, z)] = Self::init_at(x, y, z);
                }
            }
        }
        let solve_line = |f: &mut Vec<f64>, dir: usize, u: usize, v: usize| {
            // Gather the line, solve, scatter back.
            let get = |w: usize| match dir {
                0 => idx(w, u, v),
                1 => idx(u, w, v),
                _ => idx(u, v, w),
            };
            let mut ws: Vec<WRow> = Vec::with_capacity(n);
            for w in 0..n {
                let row = Self::coeffs(dir, u, v, w, n);
                let rhs = f[get(w)];
                let prev1 = if w >= 1 { Some(&ws[w - 1]) } else { None };
                let prev2 = if w >= 2 { Some(&ws[w - 2]) } else { None };
                let e = eliminate_step(prev2, prev1, row, rhs);
                ws.push(e);
            }
            let mut xs = vec![0.0; n];
            for w in (0..n).rev() {
                let x1 = if w + 1 < n { Some(xs[w + 1]) } else { None };
                let x2 = if w + 2 < n { Some(xs[w + 2]) } else { None };
                xs[w] = back_step(&ws[w], x1, x2);
            }
            for w in 0..n {
                f[get(w)] = xs[w];
            }
        };
        for _ in 0..self.iters {
            for dir in 0..3 {
                for u in 0..n {
                    for v in 0..n {
                        solve_line(&mut f, dir, u, v);
                    }
                }
            }
        }
        f
    }
}

impl Workload for Sp {
    fn name(&self) -> &'static str {
        "SP"
    }

    fn pe(&self) -> u32 {
        self.pe
    }

    fn is_vpp(&self) -> bool {
        true
    }

    fn run(&self) -> ApResult<RunReport<()>> {
        assert_eq!(self.n % self.pe as usize, 0, "pe must divide n");
        let cfg = *self;
        let reference = Arc::new(cfg.reference());
        run_with(MachineConfig::new(cfg.pe), move |cell| {
            let me = cell.id();
            let p = cell.ncells();
            let n = cfg.n;
            let zb = n / p;
            let zlo = me * zb;
            // Local field slab, (z_local, y, x) order.
            let li = |x: usize, y: usize, zz: usize| (zz * n + y) * n + x;
            let mut f: Vec<f64> = vec![0.0; zb * n * n];
            for zz in 0..zb {
                for y in 0..n {
                    for x in 0..n {
                        f[li(x, y, zz)] = Sp::init_at(x, y, zlo + zz);
                    }
                }
            }
            // Simulated message buffers: one slot per y-batch so the
            // pipeline can run ahead without overwriting unread carries
            // (the §3.1 hazard send/recv flags exist to prevent). Forward
            // carries are 8 f64 per line, backward 2 f64 per line.
            let fwd_in = cell.alloc::<f64>(8 * n * n);
            let fwd_out = cell.alloc::<f64>(8 * n * n);
            let bwd_in = cell.alloc::<f64>(2 * n * n);
            let bwd_out = cell.alloc::<f64>(2 * n * n);
            let fwd_flag = cell.alloc_flag();
            let bwd_flag = cell.alloc_flag();
            let (mut fwd_seen, mut bwd_seen) = (0u32, 0u32);
            cell.barrier();

            for _ in 0..cfg.iters {
                // ---- x sweep (local lines) ---------------------------
                for zz in 0..zb {
                    for y in 0..n {
                        let mut ws: Vec<WRow> = Vec::with_capacity(n);
                        for x in 0..n {
                            let row = Sp::coeffs(0, y, zlo + zz, x, n);
                            let prev1 = if x >= 1 { Some(&ws[x - 1]) } else { None };
                            let prev2 = if x >= 2 { Some(&ws[x - 2]) } else { None };
                            ws.push(eliminate_step(prev2, prev1, row, f[li(x, y, zz)]));
                        }
                        let mut xs = vec![0.0; n];
                        for x in (0..n).rev() {
                            let x1 = if x + 1 < n { Some(xs[x + 1]) } else { None };
                            let x2 = if x + 2 < n { Some(xs[x + 2]) } else { None };
                            xs[x] = back_step(&ws[x], x1, x2);
                        }
                        for x in 0..n {
                            f[li(x, y, zz)] = xs[x];
                        }
                    }
                }
                cell.work(zb as u64 * n as u64 * n as u64 * SP_FLOPS_PER_POINT);
                cell.barrier();

                // ---- y sweep (local lines) ---------------------------
                for zz in 0..zb {
                    for x in 0..n {
                        let mut ws: Vec<WRow> = Vec::with_capacity(n);
                        for y in 0..n {
                            let row = Sp::coeffs(1, x, zlo + zz, y, n);
                            let prev1 = if y >= 1 { Some(&ws[y - 1]) } else { None };
                            let prev2 = if y >= 2 { Some(&ws[y - 2]) } else { None };
                            ws.push(eliminate_step(prev2, prev1, row, f[li(x, y, zz)]));
                        }
                        let mut xs = vec![0.0; n];
                        for y in (0..n).rev() {
                            let x1 = if y + 1 < n { Some(xs[y + 1]) } else { None };
                            let x2 = if y + 2 < n { Some(xs[y + 2]) } else { None };
                            xs[y] = back_step(&ws[y], x1, x2);
                        }
                        for y in 0..n {
                            f[li(x, y, zz)] = xs[y];
                        }
                    }
                }
                cell.work(zb as u64 * n as u64 * n as u64 * SP_FLOPS_PER_POINT);
                cell.barrier();

                // ---- z sweep (pipelined across cells, batched by y) ---
                // Per-line eliminated rows, kept for back substitution:
                // ws_all[y][x][zz].
                let mut ws_all: Vec<Vec<Vec<WRow>>> = vec![vec![Vec::with_capacity(zb); n]; n];
                for y in 0..n {
                    // Receive the carry rows (prev1, prev2 per line).
                    let mut carry: Vec<(Option<WRow>, Option<WRow>)> = vec![(None, None); n];
                    if me > 0 {
                        fwd_seen += 1;
                        cell.wait_flag(fwd_flag, fwd_seen);
                        let slot = fwd_in + (y * 8 * n * 8) as u64;
                        let data = cell.read_slice::<f64>(slot, 8 * n);
                        for (x, c) in carry.iter_mut().enumerate() {
                            let b = &data[8 * x..8 * x + 8];
                            // A zero diagonal marks "no such row yet"
                            // (global row 1 has only one predecessor);
                            // eliminated rows of a dominant system always
                            // have diag ≥ 4, so 0 is unambiguous.
                            c.0 = (b[0] != 0.0).then(|| [b[0], b[1], b[2], b[3]]); // prev2
                            c.1 = Some([b[4], b[5], b[6], b[7]]); // prev1
                        }
                    }
                    for x in 0..n {
                        let (mut prev2, mut prev1) = carry[x];
                        for zz in 0..zb {
                            let z = zlo + zz;
                            let row = Sp::coeffs(2, x, y, z, n);
                            let e = eliminate_step(
                                prev2.as_ref(),
                                prev1.as_ref(),
                                row,
                                f[li(x, y, zz)],
                            );
                            ws_all[y][x].push(e);
                            prev2 = prev1;
                            prev1 = Some(e);
                        }
                        carry[x] = (prev2, prev1);
                    }
                    cell.work(n as u64 * zb as u64 * (SP_FLOPS_PER_POINT - 60));
                    if me + 1 < p {
                        // Forward the carry batch to the next cell.
                        let mut out = vec![0.0f64; 8 * n];
                        for (x, c) in carry.iter().enumerate() {
                            let p2 = c.0.unwrap_or_default();
                            let p1 = c.1.expect("at least one local row");
                            out[8 * x..8 * x + 4].copy_from_slice(&p2);
                            out[8 * x + 4..8 * x + 8].copy_from_slice(&p1);
                        }
                        let slot_out = fwd_out + (y * 8 * n * 8) as u64;
                        let slot_in = fwd_in + (y * 8 * n * 8) as u64;
                        cell.write_slice(slot_out, &out);
                        cell.rts(4);
                        cell.put(
                            me + 1,
                            slot_in,
                            slot_out,
                            (8 * n * 8) as u64,
                            VAddr::NULL,
                            fwd_flag,
                            true,
                        );
                    }
                }
                if me + 1 < p {
                    cell.wait_acks();
                }

                // Back substitution, pipelined in reverse, batched by y.
                for y in 0..n {
                    let mut next: Vec<(Option<f64>, Option<f64>)> = vec![(None, None); n];
                    if me + 1 < p {
                        bwd_seen += 1;
                        cell.wait_flag(bwd_flag, bwd_seen);
                        let slot = bwd_in + (y * 2 * n * 8) as u64;
                        let data = cell.read_slice::<f64>(slot, 2 * n);
                        for (x, c) in next.iter_mut().enumerate() {
                            c.0 = Some(data[2 * x]); // x_{i+1}
                            c.1 = Some(data[2 * x + 1]); // x_{i+2}
                        }
                    }
                    for x in 0..n {
                        let (mut x1, mut x2) = next[x];
                        for zz in (0..zb).rev() {
                            let v = back_step(&ws_all[y][x][zz], x1, x2);
                            f[li(x, y, zz)] = v;
                            x2 = x1;
                            x1 = Some(v);
                        }
                        next[x] = (x1, x2);
                    }
                    cell.work(n as u64 * zb as u64 * 60);
                    if me > 0 {
                        let mut out = vec![0.0f64; 2 * n];
                        for (x, c) in next.iter().enumerate() {
                            out[2 * x] = c.0.expect("solved locally");
                            out[2 * x + 1] = c.1.unwrap_or_default();
                        }
                        let slot_out = bwd_out + (y * 2 * n * 8) as u64;
                        let slot_in = bwd_in + (y * 2 * n * 8) as u64;
                        cell.write_slice(slot_out, &out);
                        cell.rts(4);
                        cell.put(
                            me - 1,
                            slot_in,
                            slot_out,
                            (2 * n * 8) as u64,
                            VAddr::NULL,
                            bwd_flag,
                            true,
                        );
                    }
                }
                if me > 0 {
                    cell.wait_acks();
                }
                cell.barrier();
            }

            // ---- verification against the sequential reference --------
            for zz in 0..zb {
                let z = zlo + zz;
                for y in 0..n {
                    for x in 0..n {
                        let got = f[li(x, y, zz)];
                        let want = reference[(z * n + y) * n + x];
                        assert!(
                            (got - want).abs() < 1e-9,
                            "cell {me}: field({x},{y},{z}) = {got} vs {want}"
                        );
                    }
                }
            }
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use aptrace::AppStats;

    #[test]
    fn sp_pipelined_sweeps_match_reference() {
        let cfg = Sp::new(Scale::Test);
        let report = cfg.run().unwrap();
        let row = AppStats::from_trace(&report.trace).to_row();
        // Interior/edge cells send one forward + one backward carry per
        // y-batch per iteration: (P-1)/P * 2 * n * iters puts per PE.
        let p = cfg.pe as f64;
        let expect = (p - 1.0) / p * 2.0 * cfg.n as f64 * cfg.iters as f64;
        assert!(
            (row.put - expect).abs() < 1e-9,
            "put {} vs {}",
            row.put,
            expect
        );
        assert_eq!(row.gets, 0.0);
        // Forward carries are 8n doubles, backward 2n: mean 5n*8 bytes.
        let mean = (8.0 + 2.0) / 2.0 * cfg.n as f64 * 8.0;
        assert!((row.msg_size - mean).abs() < 1.0, "msg {}", row.msg_size);
    }

    #[test]
    fn reference_is_deterministic_and_finite() {
        let cfg = Sp::new(Scale::Test);
        let a = cfg.reference();
        let b = cfg.reference();
        assert_eq!(a, b);
        assert!(a.iter().all(|v| v.is_finite()));
    }

    #[test]
    fn one_plane_per_cell_pipelines_correctly() {
        // zb = 1 exercises the carry's "no second predecessor" encoding
        // (regression: 0/0 = NaN at the second cell).
        Sp {
            pe: 4,
            n: 4,
            iters: 1,
        }
        .run()
        .unwrap();
    }

    #[test]
    fn single_pe_equals_reference_trivially() {
        let cfg = Sp {
            pe: 1,
            n: 8,
            iters: 1,
        };
        cfg.run().unwrap();
    }
}

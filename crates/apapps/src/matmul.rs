//! MatMul — dense matrix multiplication in "C with PUT/GET".
//!
//! §5.2: *"MatMul calculates A × B = C. The matrix to be calculated is a
//! dense 800 × 800 matrix."* A and B are row-block distributed; the B
//! block rotates around a ring. Each of the P steps multiplies the
//! resident block and PUTs it onward into the *other* half of a double
//! buffer **before** computing — the §5.4 remark that "the two C language
//! applications use PUT/GET directly and overlap communication with
//! computation". One PUT and one barrier per step reproduce Table 3's
//! 64 PUTs / 64 Syncs of 76 800-byte messages.

use crate::{Scale, Workload};
use apcore::{run_with, ApResult, MachineConfig, RunReport, VAddr};

/// MatMul instance: `n × n` over `pe` cells (`pe` divides `n`).
#[derive(Clone, Copy, Debug)]
pub struct MatMul {
    /// Number of cells (64 in the paper).
    pub pe: u32,
    /// Matrix order (800 in the paper).
    pub n: usize,
}

impl MatMul {
    /// Standard instance at `scale`.
    pub fn new(scale: Scale) -> Self {
        match scale {
            Scale::Test => MatMul { pe: 4, n: 32 },
            Scale::Paper => MatMul { pe: 64, n: 768 },
        }
    }

    /// Deterministic matrix entries.
    fn a_at(i: usize, j: usize) -> f64 {
        (((i * 37 + j * 11) % 199) as f64 / 199.0) - 0.5
    }

    fn b_at(i: usize, j: usize) -> f64 {
        (((i * 13 + j * 29) % 211) as f64 / 211.0) - 0.5
    }
}

impl Workload for MatMul {
    fn name(&self) -> &'static str {
        "MatMul"
    }

    fn pe(&self) -> u32 {
        self.pe
    }

    fn is_vpp(&self) -> bool {
        false
    }

    fn run(&self) -> ApResult<RunReport<()>> {
        assert_eq!(self.n % self.pe as usize, 0, "pe must divide n");
        let cfg = *self;
        run_with(MachineConfig::new(cfg.pe), move |cell| {
            let me = cell.id();
            let p = cell.ncells();
            let n = cfg.n;
            let nb = n / p; // rows per cell
            let block = nb * n; // f64s per block
                                // Double-buffered B block in simulated memory.
            let b0 = cell.alloc::<f64>(block);
            let b1 = cell.alloc::<f64>(block);
            let flag = cell.alloc_flag();
            let bufs = [b0, b1];

            // Local A rows [me*nb, (me+1)*nb) and initial B block (host
            // mirrors for compute; B travels through simulated memory).
            let a: Vec<f64> = (0..block)
                .map(|k| MatMul::a_at(me * nb + k / n, k % n))
                .collect();
            let binit: Vec<f64> = (0..block)
                .map(|k| MatMul::b_at(me * nb + k / n, k % n))
                .collect();
            cell.write_slice(b0, &binit);
            let mut c = vec![0.0f64; block];
            cell.barrier();

            for s in 0..p {
                let cur = bufs[s % 2];
                let nxt = bufs[(s + 1) % 2];
                // Whose B block is resident this step?
                let owner = (me + s) % p;
                // Ship it onward first — communication overlaps compute.
                if s + 1 < p {
                    let dst = (me + p - 1) % p;
                    cell.put(dst, nxt, cur, (block * 8) as u64, VAddr::NULL, flag, false);
                }
                // Multiply: C[my rows] += A[:, owner block] × B_owner.
                let bcur = cell.read_slice::<f64>(cur, block);
                for i in 0..nb {
                    for k in 0..nb {
                        let aik = a[i * n + owner * nb + k];
                        let brow = &bcur[k * n..(k + 1) * n];
                        for (cv, bv) in c[i * n..(i + 1) * n].iter_mut().zip(brow) {
                            *cv += aik * bv;
                        }
                    }
                }
                cell.work((2 * nb * nb * n) as u64);
                if s + 1 < p {
                    cell.wait_flag(flag, (s + 1) as u32);
                }
                cell.barrier();
            }

            // Verification: every entry against the closed-form dot
            // product (entries are deterministic functions, so the full
            // check is O(nb·n·n) — same order as one multiply step).
            for i in 0..nb {
                let gi = me * nb + i;
                for j in (0..n).step_by((n / 16).max(1)) {
                    let mut want = 0.0f64;
                    for k in 0..n {
                        want += MatMul::a_at(gi, k) * MatMul::b_at(k, j);
                    }
                    let got = c[i * n + j];
                    let rel = (got - want).abs() / want.abs().max(1e-9);
                    assert!(
                        rel < 1e-9,
                        "cell {me}: C[{gi}][{j}] = {got} vs {want} (rel {rel:e})"
                    );
                }
            }
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use aptrace::AppStats;

    #[test]
    fn matmul_verifies_with_table3_shape() {
        let cfg = MatMul::new(Scale::Test);
        let report = cfg.run().unwrap();
        let row = AppStats::from_trace(&report.trace).to_row();
        // P-1 PUTs and P+1 barriers per PE (init + per step).
        let p = cfg.pe as usize;
        assert_eq!(row.put, (p - 1) as f64);
        assert_eq!(row.sync, (p + 1) as f64);
        assert_eq!(row.gop + row.vgop, 0.0, "C app: no global ops");
        // Message = one row block.
        let block_bytes = (cfg.n / p * cfg.n * 8) as f64;
        assert_eq!(row.msg_size, block_bytes);
        // No acknowledge GETs: C apps synchronize with flags.
        let stats = AppStats::from_trace(&report.trace);
        assert_eq!(stats.ack_gets, 0);
    }

    #[test]
    fn single_cell_matmul() {
        MatMul { pe: 1, n: 16 }.run().unwrap();
    }
}

//! NPB EP — embarrassingly parallel.
//!
//! §5.2: *"EP generates 2^28 pseudo-random numbers and has no
//! communication."* Each PE jumps to its slice of the NPB random stream
//! (the `O(log k)` LCG skip), generates Gaussian deviates by the
//! Marsaglia polar method, and tallies them into annuli. Table 3's EP row
//! is all zeros — and so is ours: the only trace ops are `Work`.

use crate::util::lcg::{NpbRandom, SEED};
use crate::{Scale, Workload};
use apcore::{run_with, ApResult, MachineConfig, RunReport};

/// EP instance: `2^log2_pairs` candidate pairs over `pe` cells.
#[derive(Clone, Copy, Debug)]
pub struct Ep {
    /// Number of cells (64 in the paper's run).
    pub pe: u32,
    /// log2 of the number of candidate pairs (28 in the paper; scaled
    /// down here).
    pub log2_pairs: u32,
}

/// Per-slice tallies: accepted-deviate annulus counts and coordinate sums.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct EpTally {
    /// Counts of deviates with `k ≤ max(|x|,|y|) < k+1`.
    pub counts: [u64; 10],
    /// Sum of x deviates.
    pub sx: f64,
    /// Sum of y deviates.
    pub sy: f64,
}

/// Generates the tally for pairs `[lo, hi)` of the stream (shared by the
/// SPMD program and the sequential reference).
pub fn tally_range(lo: u64, hi: u64) -> EpTally {
    // Two deviates per candidate pair.
    let mut rng = NpbRandom::skip_to(SEED, 2 * lo);
    let mut t = EpTally::default();
    for _ in lo..hi {
        let x = 2.0 * rng.next_f64() - 1.0;
        let y = 2.0 * rng.next_f64() - 1.0;
        let s = x * x + y * y;
        if s <= 1.0 && s > 0.0 {
            let f = (-2.0 * s.ln() / s).sqrt();
            let (gx, gy) = (x * f, y * f);
            let bin = gx.abs().max(gy.abs()) as usize;
            if bin < 10 {
                t.counts[bin] += 1;
            }
            t.sx += gx;
            t.sy += gy;
        }
    }
    t
}

impl Ep {
    /// Standard instance at `scale` (64 PEs as in Table 3).
    pub fn new(scale: Scale) -> Self {
        match scale {
            Scale::Test => Ep {
                pe: 4,
                log2_pairs: 12,
            },
            Scale::Paper => Ep {
                pe: 64,
                log2_pairs: 20,
            },
        }
    }
}

impl Workload for Ep {
    fn name(&self) -> &'static str {
        "EP"
    }

    fn pe(&self) -> u32 {
        self.pe
    }

    fn is_vpp(&self) -> bool {
        true
    }

    fn run(&self) -> ApResult<RunReport<()>> {
        let pairs = 1u64 << self.log2_pairs;
        let pe = self.pe as u64;
        run_with(MachineConfig::new(self.pe), move |cell| {
            let me = cell.id() as u64;
            let chunk = pairs.div_ceil(pe);
            let lo = (me * chunk).min(pairs);
            let hi = ((me + 1) * chunk).min(pairs);
            let t = tally_range(lo, hi);
            // ~25 flops per pair (2 deviates, polar test, transform).
            cell.work(25 * (hi - lo));
            // Verification: identical to the sequential reference slice.
            let reference = tally_range(lo, hi);
            assert_eq!(t, reference, "EP slice mismatch on cell {me}");
            assert!(
                t.counts.iter().sum::<u64>() > 0 || hi == lo,
                "EP produced no deviates on cell {me}"
            );
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use aptrace::AppStats;

    #[test]
    fn ep_runs_and_has_no_communication() {
        let report = Ep::new(Scale::Test).run().unwrap();
        let stats = AppStats::from_trace(&report.trace);
        assert_eq!(stats.put + stats.puts + stats.get + stats.gets, 0);
        assert_eq!(stats.send, 0);
        assert_eq!(stats.gop + stats.vgop, 0);
        assert_eq!(stats.sync, 0);
        assert!(stats.work_flops > 0);
        // No communication => no idle time anywhere.
        for t in &report.times {
            assert_eq!(t.idle, aputil::SimTime::ZERO);
        }
    }

    #[test]
    fn slices_tile_the_whole_stream() {
        let whole = tally_range(0, 4096);
        let mut merged = EpTally::default();
        for pe in 0..4 {
            let part = tally_range(pe * 1024, (pe + 1) * 1024);
            for (m, p) in merged.counts.iter_mut().zip(part.counts) {
                *m += p;
            }
            merged.sx += part.sx;
            merged.sy += part.sy;
        }
        assert_eq!(whole.counts, merged.counts);
        assert!((whole.sx - merged.sx).abs() < 1e-9);
        assert!((whole.sy - merged.sy).abs() < 1e-9);
    }

    #[test]
    fn acceptance_rate_is_pi_over_four() {
        let t = tally_range(0, 100_000);
        let accepted: u64 = t.counts.iter().sum();
        let rate = accepted as f64 / 100_000.0;
        assert!(
            (rate - std::f64::consts::PI / 4.0).abs() < 0.01,
            "rate {rate}"
        );
    }
}

//! SPEC TOMCATV — vectorized mesh generation.
//!
//! §5.2 runs TOMCATV (257×257 mesh) in two flavours: *"one with stride
//! data transfers, the other without stride data transfers, meaning each
//! item was sent one by one."* The mesh is partitioned along the second
//! array dimension (columns), so each cell's boundary **columns** are
//! replicated in its neighbours as a two-column *overlap area* (Figure 2)
//! — and a column is strided in row-major storage, which is precisely the
//! case §2.2 says needs hardware stride transfer.
//!
//! Per iteration each cell refreshes the overlap of mesh array X by
//! PUTting its two edge columns to each neighbour and refreshes Y by
//! GETting the neighbour's columns (Table 3: PUTS = GETS = 37.5/PE over
//! 10 iterations), computes a wide-stencil relaxation, and reduces the
//! mesh error (2 Gops and 8 barriers per iteration). In **no-stride**
//! mode every column op becomes 257 single-element transfers — Table 3's
//! "number of communications becomes 257 times and the message size one
//! 257th" — and the run-time system burns proportionally more address
//! arithmetic (the paper's 24% RTS bar).

use crate::{Scale, Workload};
use apcore::{run_with, ApResult, MachineConfig, RunReport, StrideSpec, VAddr};
use std::sync::Arc;

/// TOMCATV instance on an `n × n` mesh over `pe` cells.
#[derive(Clone, Copy, Debug)]
pub struct Tomcatv {
    /// Number of cells (16 in the paper).
    pub pe: u32,
    /// Mesh points per side (257 in SPEC/the paper).
    pub n: usize,
    /// Relaxation iterations (the paper simulated 10).
    pub iters: usize,
    /// Use hardware stride transfers (`TC st`) or element-by-element
    /// transfers (`TC no st`).
    pub stride: bool,
}

const OMEGA: f64 = 0.3;
const KAPPA: f64 = 0.05;

impl Tomcatv {
    /// Standard instance at `scale`.
    pub fn new(scale: Scale, stride: bool) -> Self {
        match scale {
            Scale::Test => Tomcatv {
                pe: 4,
                n: 33,
                iters: 2,
                stride,
            },
            Scale::Paper => Tomcatv {
                pe: 16,
                n: 257,
                iters: 10,
                stride,
            },
        }
    }

    fn xinit(i: usize, j: usize) -> f64 {
        j as f64 + 0.3 * ((i * j) as f64 * 0.01).sin()
    }

    fn yinit(i: usize, j: usize) -> f64 {
        i as f64 + 0.3 * ((i + 2 * j) as f64 * 0.01).cos()
    }

    /// One relaxation step of a field; returns the max change. `get`
    /// reads the *old* field at `(i, j)`.
    fn relax(
        n: usize,
        get: impl Fn(usize, usize) -> f64,
        put: &mut impl FnMut(usize, usize, f64),
    ) -> f64 {
        let mut err = 0.0f64;
        for i in 2..n - 2 {
            for j in 2..n - 2 {
                let near = (get(i, j - 1) + get(i, j + 1) + get(i - 1, j) + get(i + 1, j)) / 4.0;
                let far = (get(i, j - 2) + get(i, j + 2)) / 2.0;
                let v = get(i, j);
                let nv = v + OMEGA * (near - v) + KAPPA * (far - v);
                put(i, j, nv);
                err = err.max((nv - v).abs());
            }
        }
        err
    }

    /// Sequential reference: `(X, Y, per-iteration errors)`.
    pub fn reference(&self) -> (Vec<f64>, Vec<f64>, Vec<f64>) {
        let n = self.n;
        let mut x: Vec<f64> = (0..n * n).map(|k| Self::xinit(k / n, k % n)).collect();
        let mut y: Vec<f64> = (0..n * n).map(|k| Self::yinit(k / n, k % n)).collect();
        let mut errs = Vec::new();
        for _ in 0..self.iters {
            let old = x.clone();
            let ex = Self::relax(n, |i, j| old[i * n + j], &mut |i, j, v| x[i * n + j] = v);
            let old = y.clone();
            let ey = Self::relax(n, |i, j| old[i * n + j], &mut |i, j, v| y[i * n + j] = v);
            errs.push(ex.max(ey));
        }
        (x, y, errs)
    }
}

impl Workload for Tomcatv {
    fn name(&self) -> &'static str {
        if self.stride {
            "TC st"
        } else {
            "TC no st"
        }
    }

    fn pe(&self) -> u32 {
        self.pe
    }

    fn is_vpp(&self) -> bool {
        true
    }

    fn run(&self) -> ApResult<RunReport<()>> {
        let cfg = *self;
        let reference = Arc::new(cfg.reference());
        run_with(MachineConfig::new(cfg.pe), move |cell| {
            let me = cell.id();
            let p = cell.ncells();
            let n = cfg.n;
            let chunk = n.div_ceil(p);
            let clo = (me * chunk).min(n);
            let chi = ((me + 1) * chunk).min(n);
            let nb = chi - clo;
            assert!(nb == 0 || nb >= 2, "each cell needs at least two columns");
            let w = chunk + 4; // uniform local width: 2 overlap columns per side
                               // Local fields in simulated memory: rows 0..n, local cols
                               // 0..w; local col 2+k holds global col clo+k.
            let xa = cell.alloc::<f64>(n * w);
            let ya = cell.alloc::<f64>(n * w);
            let xflag = cell.alloc_flag();
            let yflag = cell.alloc_flag();
            let (mut xput_seen, mut yget_seen) = (0u32, 0u32);

            // Host mirrors (the data plane keeps them in sync with the
            // simulated arrays at the points that matter).
            let mut xh = vec![0.0f64; n * w];
            let mut yh = vec![0.0f64; n * w];
            for i in 0..n {
                for c in 0..w {
                    let j = (clo + c).wrapping_sub(2);
                    if j < n {
                        xh[i * w + c] = Tomcatv::xinit(i, j);
                        yh[i * w + c] = Tomcatv::yinit(i, j);
                    }
                }
            }
            cell.write_slice(xa, &xh);
            cell.write_slice(ya, &yh);

            // Transfers one local column to/from a neighbour.
            let col_addr = |base: VAddr, c: usize| base + (c * 8) as u64;
            let colspec = StrideSpec::new(8, n as u32, (w * 8) as u32);

            let left = me.checked_sub(1);
            let right = if me + 1 < p && chi < n {
                Some(me + 1)
            } else {
                None
            };
            let left = if clo > 0 { left } else { None };

            for iter in 0..cfg.iters {
                // ---- phase 1: X overlaps via PUT --------------------
                cell.barrier();
                let mut xput_incoming = 0u32;
                // Incoming: left neighbour fills my cols 0,1; right fills
                // my cols 2+nb, 3+nb.
                if left.is_some() {
                    xput_incoming += 2;
                }
                if right.is_some() {
                    xput_incoming += 2;
                }
                let push_col = |cell: &mut apcore::Cell, dst: usize, src_c: usize, dst_c: usize| {
                    if cfg.stride {
                        // §2.1: the RTS discovers the stride pattern by
                        // walking the index space — cost scales with the
                        // column length (the paper's 7% RTS bar).
                        cell.rts(n as u64);
                        cell.put_stride(
                            dst,
                            col_addr(xa, dst_c),
                            col_addr(xa, src_c),
                            colspec,
                            colspec,
                            VAddr::NULL,
                            xflag,
                            true,
                        );
                    } else {
                        // Element by element: n single-f64 PUTs; the flag
                        // counts elements, and the RTS recalculates the
                        // address for every one.
                        for i in 0..n {
                            // Full global→local index conversion per
                            // element (the paper's 24% RTS bar).
                            cell.rts(6);
                            cell.put(
                                dst,
                                col_addr(xa, dst_c) + (i * w * 8) as u64,
                                col_addr(xa, src_c) + (i * w * 8) as u64,
                                8,
                                VAddr::NULL,
                                xflag,
                                true,
                            );
                        }
                    }
                };
                if let Some(l) = left {
                    // My global cols clo, clo+1 -> left's right overlap.
                    // Left neighbour always holds a full chunk.
                    push_col(cell, l, 2, 2 + chunk);
                    push_col(cell, l, 3, 3 + chunk);
                }
                if let Some(r) = right {
                    // My global cols chi-2, chi-1 -> right's cols 0, 1.
                    push_col(cell, r, 2 + nb - 2, 0);
                    push_col(cell, r, 2 + nb - 1, 1);
                }
                cell.wait_acks();
                cell.barrier();
                let per_op = if cfg.stride { 1 } else { n as u32 };
                xput_seen += xput_incoming * per_op;
                if xput_incoming > 0 {
                    cell.wait_flag(xflag, xput_seen);
                }

                // ---- phase 2: Y overlaps via GET ---------------------
                cell.barrier();
                let pull_col = |cell: &mut apcore::Cell, src: usize, src_c: usize, dst_c: usize| {
                    if cfg.stride {
                        cell.rts(n as u64);
                        cell.get_stride(
                            src,
                            col_addr(ya, src_c),
                            col_addr(ya, dst_c),
                            colspec,
                            colspec,
                            VAddr::NULL,
                            yflag,
                        );
                    } else {
                        for i in 0..n {
                            cell.rts(6);
                            cell.get(
                                src,
                                col_addr(ya, src_c) + (i * w * 8) as u64,
                                col_addr(ya, dst_c) + (i * w * 8) as u64,
                                8,
                                VAddr::NULL,
                                yflag,
                            );
                        }
                    }
                };
                let mut ygets = 0u32;
                if let Some(l) = left {
                    // Left's rightmost owned cols (global clo-2, clo-1).
                    pull_col(cell, l, 2 + chunk - 2, 0);
                    pull_col(cell, l, 2 + chunk - 1, 1);
                    ygets += 2;
                }
                if let Some(r) = right {
                    // Right's leftmost owned cols (global chi, chi+1).
                    pull_col(cell, r, 2, 2 + nb);
                    pull_col(cell, r, 3, 3 + nb);
                    ygets += 2;
                }
                yget_seen += ygets * per_op;
                if ygets > 0 {
                    cell.wait_flag(yflag, yget_seen);
                }
                cell.barrier();

                // ---- phase 3: relaxation ------------------------------
                cell.barrier();
                let xh_old = cell.read_slice::<f64>(xa, n * w);
                let yh_old = cell.read_slice::<f64>(ya, n * w);
                xh.copy_from_slice(&xh_old);
                yh.copy_from_slice(&yh_old);
                let mut errx = 0.0f64;
                let mut erry = 0.0f64;
                // Owned interior columns only.
                let jlo = clo.max(2);
                let jhi = chi.min(n - 2);
                for i in 2..n - 2 {
                    for j in jlo..jhi {
                        let c = j - clo + 2;
                        let g = |arr: &Vec<f64>, di: isize, dc: isize| {
                            arr[(i as isize + di) as usize * w + (c as isize + dc) as usize]
                        };
                        let v = g(&xh_old, 0, 0);
                        let near = (g(&xh_old, 0, -1)
                            + g(&xh_old, 0, 1)
                            + g(&xh_old, -1, 0)
                            + g(&xh_old, 1, 0))
                            / 4.0;
                        let far = (g(&xh_old, 0, -2) + g(&xh_old, 0, 2)) / 2.0;
                        let nv = v + OMEGA * (near - v) + KAPPA * (far - v);
                        xh[i * w + c] = nv;
                        errx = errx.max((nv - v).abs());
                        let v = g(&yh_old, 0, 0);
                        let near = (g(&yh_old, 0, -1)
                            + g(&yh_old, 0, 1)
                            + g(&yh_old, -1, 0)
                            + g(&yh_old, 1, 0))
                            / 4.0;
                        let far = (g(&yh_old, 0, -2) + g(&yh_old, 0, 2)) / 2.0;
                        let nv = v + OMEGA * (near - v) + KAPPA * (far - v);
                        yh[i * w + c] = nv;
                        erry = erry.max((nv - v).abs());
                    }
                }
                cell.write_slice(xa, &xh);
                cell.write_slice(ya, &yh);
                // The real TOMCATV computes RX/RY residuals with Jacobian
                // terms, a tridiagonal solve per column, and the additions
                // — ≈80 flops per point per field; our simplified stencil
                // charges the original's cost to keep the paper's balance.
                cell.work(((n - 4) as u64) * ((jhi.saturating_sub(jlo)) as u64) * 160);
                cell.barrier();

                // ---- phase 4: error reduction -------------------------
                cell.barrier();
                let gx = cell.reduce_max_f64(errx);
                let gy = cell.reduce_max_f64(erry);
                let global_err = gx.max(gy);
                let want = reference.2[iter];
                assert!(
                    (global_err - want).abs() <= 1e-12 * want.abs().max(1.0),
                    "cell {me}: iter {iter} err {global_err} vs reference {want}"
                );
                cell.barrier();
            }

            // ---- verification of the owned mesh region ----------------
            let (rx, ry, _) = &*reference;
            for i in 0..n {
                for j in clo..chi {
                    let c = j - clo + 2;
                    let (gx, gy) = (xh[i * w + c], yh[i * w + c]);
                    let (wx, wy) = (rx[i * n + j], ry[i * n + j]);
                    assert!(
                        (gx - wx).abs() < 1e-11 && (gy - wy).abs() < 1e-11,
                        "cell {me}: mesh({i},{j}) = ({gx},{gy}) vs ({wx},{wy})"
                    );
                }
            }
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use aptrace::AppStats;

    #[test]
    fn stride_version_verifies_with_table3_shape() {
        let cfg = Tomcatv::new(Scale::Test, true);
        let report = cfg.run().unwrap();
        let row = AppStats::from_trace(&report.trace).to_row();
        // 2 columns × 2 sides for interior cells, halved at the edges:
        // mean (4·(P−2) + 2·2)/P per iteration, for PUTs (X) and GETs (Y).
        let p = cfg.pe as f64;
        let per_iter = (4.0 * (p - 2.0) + 4.0) / p;
        assert!(
            (row.puts - per_iter * cfg.iters as f64).abs() < 1e-9,
            "puts {}",
            row.puts
        );
        assert!(
            (row.gets - per_iter * cfg.iters as f64).abs() < 1e-9,
            "gets {}",
            row.gets
        );
        assert_eq!(row.put, 0.0);
        assert_eq!(row.get, 0.0);
        assert_eq!(row.sync, (8 * cfg.iters) as f64);
        assert_eq!(row.gop, (2 * cfg.iters) as f64);
        // One column = n × 8 bytes.
        assert!((row.msg_size - (cfg.n * 8) as f64).abs() < 1e-9);
    }

    #[test]
    fn no_stride_version_verifies_with_n_times_more_messages() {
        let st = Tomcatv::new(Scale::Test, true);
        let no = Tomcatv::new(Scale::Test, false);
        let r_st = st.run().unwrap();
        let r_no = no.run().unwrap();
        let row_st = AppStats::from_trace(&r_st.trace).to_row();
        let row_no = AppStats::from_trace(&r_no.trace).to_row();
        // The paper's 257× rule: ops multiply by n, message size divides by n.
        assert!((row_no.put - row_st.puts * st.n as f64).abs() < 1e-6);
        assert!((row_no.get - row_st.gets * st.n as f64).abs() < 1e-6);
        assert_eq!(row_no.msg_size, 8.0);
        // And the emulated machine runs measurably slower without stride.
        assert!(
            r_no.total_time > r_st.total_time,
            "no-stride {} must exceed stride {}",
            r_no.total_time,
            r_st.total_time
        );
    }

    #[test]
    fn reference_errors_shrink() {
        let (_, _, errs) = Tomcatv::new(Scale::Test, true).reference();
        assert!(errs.windows(2).all(|w| w[1] <= w[0] * 1.5), "errs {errs:?}");
    }
}

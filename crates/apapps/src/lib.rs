//! # apapps — the paper's workloads on the AP1000+ PUT/GET interface
//!
//! The eight applications of §5.2, implemented as real SPMD programs on
//! the `apcore` emulator: each computes an actual numerical answer through
//! the simulated machine and validates it against a sequential reference,
//! while the runtime's probes record the trace that `mlsim` replays.
//!
//! * [`ep::Ep`] — NPB EP: embarrassingly parallel random-number deviates
//!   (no communication).
//! * [`cg::Cg`] — NPB CG: conjugate-gradient eigenvalue estimation; vector
//!   global sums dominate (the paper's worst case).
//! * [`ft::Ft`] — NPB FT: 3-D FFT with all-to-all transposes via stride
//!   PUT/GET.
//! * [`sp::Sp`] — NPB SP-style ADI: pentadiagonal line solves, pipelined
//!   across the partition with many medium PUTs.
//! * [`tomcatv::Tomcatv`] — SPEC TOMCATV: 257×257 mesh generation with
//!   overlap-area boundary exchange; runs **with or without** hardware
//!   stride transfer (the §5.4 ablation).
//! * [`matmul::MatMul`] — dense matrix multiply in "C with PUT/GET":
//!   ring-rotated blocks, communication overlapped with computation.
//! * [`scg::Scg`] — scaled conjugate gradient on a 5-point Poisson matrix:
//!   halo exchange by PUT one way and SEND the other, flag
//!   synchronization, a single final barrier.
//!
//! Language split follows the paper: the five VPP-Fortran applications
//! charge run-time-system work and use the Ack & Barrier model
//! (acknowledged PUTs); the two C applications use flags directly and
//! overlap communication with computation.

pub mod cg;
pub mod ep;
pub mod ft;
pub mod matmul;
pub mod scg;
pub mod sp;
pub mod tomcatv;
pub mod util;

use apcore::{ApError, ApResult, FaultSpec, RunReport};

/// Problem-size presets.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Scale {
    /// Tiny instances for unit tests (seconds of host time).
    Test,
    /// Reduced paper-shaped instances for the reproduction harness: the
    /// per-PE communication statistics stay proportional to Table 3.
    Paper,
}

/// A runnable workload with the paper's metadata.
pub trait Workload: Send + Sync {
    /// Table-2/3 row label.
    fn name(&self) -> &'static str;
    /// Number of processing elements.
    fn pe(&self) -> u32;
    /// `true` for the VPP Fortran applications (RTS time reported).
    fn is_vpp(&self) -> bool;
    /// Runs on the emulator; `Ok` implies the numerical result verified.
    fn run(&self) -> ApResult<RunReport<()>>;

    /// Like [`run`](Workload::run), but under a deterministic fault
    /// schedule: a survived run returns `Ok` with a verified numerical
    /// result and the [`apcore::FaultReport`](aputil::FaultReport) in
    /// [`RunReport::fault`]; an unsurvivable schedule aborts with a
    /// structured error. Workloads opt in (CG, the paper's communication
    /// worst case, is the reference implementation); the default reports
    /// that fault injection is not wired up for this application.
    fn run_faulted(&self, faults: &FaultSpec) -> ApResult<RunReport<()>> {
        let _ = faults;
        Err(ApError::InvalidArg(format!(
            "{}: fault injection is not wired up for this workload",
            self.name()
        )))
    }
}

/// The paper's application list at the given scale, in Table-2 order:
/// EP, CG, FT, SP, TOMCATV (stride), TOMCATV (no stride), MatMul, SCG.
pub fn standard_suite(scale: Scale) -> Vec<Box<dyn Workload>> {
    vec![
        Box::new(ep::Ep::new(scale)),
        Box::new(cg::Cg::new(scale)),
        Box::new(ft::Ft::new(scale)),
        Box::new(sp::Sp::new(scale)),
        Box::new(tomcatv::Tomcatv::new(scale, true)),
        Box::new(tomcatv::Tomcatv::new(scale, false)),
        Box::new(matmul::MatMul::new(scale)),
        Box::new(scg::Scg::new(scale)),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn suite_has_eight_rows_in_table_order() {
        let suite = standard_suite(Scale::Test);
        let names: Vec<&str> = suite.iter().map(|w| w.name()).collect();
        assert_eq!(
            names,
            ["EP", "CG", "FT", "SP", "TC st", "TC no st", "MatMul", "SCG"]
        );
        // Language split per §5.2: five VPP Fortran + TOMCATV twice, two C.
        let vpp: Vec<bool> = suite.iter().map(|w| w.is_vpp()).collect();
        assert_eq!(vpp, [true, true, true, true, true, true, false, false]);
    }

    #[test]
    fn run_faulted_defaults_to_a_structured_unsupported_error() {
        let err = ep::Ep::new(Scale::Test)
            .run_faulted(&FaultSpec::quiet())
            .unwrap_err();
        assert!(err.to_string().contains("not wired up"), "{err}");
    }
}

//! Quickstart: the PUT/GET interface in one page.
//!
//! Run with `cargo run --release --example quickstart`.
//!
//! Four cells pass real data through the emulated AP1000+: a ring-shift
//! PUT with completion flags, a GET, a hardware barrier, and a scalar
//! global reduction over the communication registers — the §3.1 interface
//! end to end.

use apcore::{run_with, MachineConfig, VAddr};

fn main() {
    let report = run_with(MachineConfig::new(4), |cell| {
        let me = cell.id();
        let n = cell.ncells();

        // Every cell allocates the same logical addresses (SPMD lockstep),
        // so "my buffer" names the same place on every cell.
        let outbox = cell.alloc::<f64>(1);
        let inbox = cell.alloc::<f64>(1);
        let fetched = cell.alloc::<f64>(1);
        let recv_flag = cell.alloc_flag();
        let get_flag = cell.alloc_flag();

        cell.write_pod(outbox, 100.0 + me as f64);
        cell.barrier();

        // One-sided write to my right neighbour; its recv_flag increments
        // when the receive DMA lands the data (§4.1).
        cell.put(
            (me + 1) % n,
            inbox,
            outbox,
            8,
            VAddr::NULL,
            recv_flag,
            false,
        );
        cell.wait_flag(recv_flag, 1);
        let from_left = cell.read_pod::<f64>(inbox);

        // One-sided read from my left neighbour.
        cell.get((me + n - 1) % n, outbox, fetched, 8, VAddr::NULL, get_flag);
        cell.wait_flag(get_flag, 1);
        let also_from_left = cell.read_pod::<f64>(fetched);
        assert_eq!(from_left, also_from_left);

        // Scalar global sum on the communication registers (§4.4/§4.5).
        let total = cell.reduce_sum_f64(from_left);
        (from_left, total)
    })
    .expect("simulation failed");

    println!("cell outputs (value received, global sum):");
    for (i, (v, total)) in report.outputs.iter().enumerate() {
        println!("  cell{i}: received {v}, sum {total}");
    }
    println!(
        "simulated time: {} | T-net messages: {} | barriers: {}",
        report.total_time, report.tnet.messages, report.barriers
    );
    let t = &report.times[0];
    println!(
        "cell0 breakdown: exec {} rts {} overhead {} idle {}",
        t.exec, t.rts, t.overhead, t.idle
    );
}

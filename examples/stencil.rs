//! A 1-D heat-diffusion stencil with PUT halo exchange.
//!
//! Run with `cargo run --release --example stencil`.
//!
//! Classic domain decomposition in the paper's style: each cell owns a
//! band of a rod, pushes its boundary temperatures into the neighbours'
//! halo slots with one-sided PUTs, waits on its receive flag, and relaxes.
//! The distributed result is checked against a sequential solver, and the
//! run's time breakdown is printed — watch idle time fall as the
//! computation grows relative to communication.

use apcore::{run_with, MachineConfig, VAddr};

const CELLS: u32 = 8;
const POINTS: usize = 1024; // rod discretization
const STEPS: usize = 200;
const ALPHA: f64 = 0.25;

fn sequential() -> Vec<f64> {
    let mut t: Vec<f64> = (0..POINTS).map(init).collect();
    for _ in 0..STEPS {
        let old = t.clone();
        for i in 1..POINTS - 1 {
            t[i] = old[i] + ALPHA * (old[i - 1] - 2.0 * old[i] + old[i + 1]);
        }
    }
    t
}

fn init(i: usize) -> f64 {
    if i > POINTS / 4 && i < POINTS / 3 {
        100.0
    } else {
        0.0
    }
}

fn main() {
    let reference = sequential();
    let golden = reference.clone();
    let report = run_with(MachineConfig::new(CELLS), move |cell| {
        let me = cell.id();
        let p = cell.ncells();
        let nb = POINTS / p;
        let lo = me * nb;
        // Simulated halo slots + outgoing staging.
        let halo_left = cell.alloc::<f64>(1); // neighbour's rightmost point
        let halo_right = cell.alloc::<f64>(1); // neighbour's leftmost point
        let stage = cell.alloc::<f64>(1);
        let flag = cell.alloc_flag();
        let mut seen = 0u32;

        let mut t: Vec<f64> = (lo..lo + nb).map(init).collect();
        cell.barrier();

        for _ in 0..STEPS {
            let mut incoming = 0u32;
            // Push my edge temperatures into the neighbours' halos.
            if me > 0 {
                cell.write_pod(stage, t[0]);
                cell.put(me - 1, halo_right, stage, 8, VAddr::NULL, flag, false);
                incoming += 1; // left neighbour pushes back symmetrically
            }
            if me + 1 < p {
                cell.write_pod(stage, t[nb - 1]);
                cell.put(me + 1, halo_left, stage, 8, VAddr::NULL, flag, false);
                incoming += 1;
            }
            seen += incoming;
            cell.wait_flag(flag, seen);
            let left = if me > 0 {
                cell.read_pod::<f64>(halo_left)
            } else {
                0.0
            };
            let right = if me + 1 < p {
                cell.read_pod::<f64>(halo_right)
            } else {
                0.0
            };

            let old = t.clone();
            for i in 0..nb {
                let gi = lo + i;
                if gi == 0 || gi == POINTS - 1 {
                    continue; // fixed boundary
                }
                let l = if i == 0 { left } else { old[i - 1] };
                let r = if i == nb - 1 { right } else { old[i + 1] };
                t[i] = old[i] + ALPHA * (l - 2.0 * old[i] + r);
            }
            cell.work(4 * nb as u64);
            cell.barrier();
        }

        // Verify my band against the sequential run.
        for (i, &v) in t.iter().enumerate() {
            let want = golden[lo + i];
            assert!((v - want).abs() < 1e-9, "point {} diverged", lo + i);
        }
        t.iter().sum::<f64>()
    })
    .expect("simulation failed");

    let total_heat: f64 = report.outputs.iter().sum();
    let want: f64 = reference.iter().sum();
    println!("distributed heat {total_heat:.6} vs sequential {want:.6} ✓");
    println!("simulated time: {}", report.total_time);
    for (i, t) in report.times.iter().enumerate() {
        println!(
            "  cell{i}: exec {:>10} overhead {:>10} idle {:>10}",
            t.exec.to_string(),
            t.overhead.to_string(),
            t.idle.to_string()
        );
    }
}

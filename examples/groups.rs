//! Group barriers and group reductions (§2.3).
//!
//! Run with `cargo run --release --example groups`.
//!
//! §2.3: *"Barrier synchronization and global reductions are performed in
//! specific groups of nodes"* — the index-partition case where arrays are
//! decomposed two-dimensionally and each row/column of cells synchronizes
//! independently. The S-net only covers the full machine, so group
//! collectives run in software on the communication registers (§4.5),
//! exactly as this example does: a 4×4 cell grid computes row sums and
//! column maxima concurrently, no full-machine barrier involved.

use apcore::{run_with, MachineConfig, ReduceOp};

const SIDE: usize = 4;

fn main() {
    let report = run_with(MachineConfig::new((SIDE * SIDE) as u32), |cell| {
        let me = cell.id();
        let (row, col) = (me / SIDE, me % SIDE);
        let value = (me * me) as f64;

        // Row group: cells sharing `row`; column group: sharing `col`.
        let row_group: Vec<usize> = (0..SIDE).map(|c| row * SIDE + c).collect();
        let col_group: Vec<usize> = (0..SIDE).map(|r| r * SIDE + col).collect();

        cell.group_barrier(&row_group);
        let row_sum = cell.group_reduce_f64(&row_group, value, ReduceOp::Sum);
        cell.group_barrier(&col_group);
        let col_max = cell.group_reduce_f64(&col_group, value, ReduceOp::Max);

        // Verify against the closed forms.
        let expect_sum: f64 = (0..SIDE).map(|c| ((row * SIDE + c).pow(2)) as f64).sum();
        let expect_max = ((3 * SIDE + col).pow(2)) as f64;
        assert_eq!(row_sum, expect_sum, "cell {me} row sum");
        assert_eq!(col_max, expect_max, "cell {me} col max");
        (row_sum, col_max)
    })
    .expect("simulation failed");

    println!("4×4 cell grid, software group collectives over communication registers:");
    for r in 0..SIDE {
        let (sum, _) = report.outputs[r * SIDE];
        println!("  row {r}: sum of id² = {sum}");
    }
    for c in 0..SIDE {
        let (_, max) = report.outputs[c];
        println!("  col {c}: max of id² = {max}");
    }
    println!(
        "simulated time {} | full-machine barriers used: {}",
        report.total_time, report.barriers
    );
    assert_eq!(
        report.barriers, 0,
        "no S-net barriers — groups are software"
    );
}

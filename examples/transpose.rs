//! Distributed matrix transpose: the stride-hardware ablation in miniature.
//!
//! Run with `cargo run --release --example transpose`.
//!
//! A row-block distributed N×N matrix is transposed twice — once with one
//! `put_stride` per destination (the AP1000+ hardware path), once sending
//! every element separately (what a machine without stride support is
//! reduced to). Both produce the correct transpose; the simulated times
//! show the §5.4 TOMCATV effect: the paper reports the stride version
//! "about 50% faster" at machine scale.

use apcore::{run_with, MachineConfig, StrideSpec, VAddr};

const CELLS: u32 = 4;
const N: usize = 64;

fn element(i: usize, j: usize) -> f64 {
    (i * N + j) as f64
}

fn run(stride: bool) -> (bool, aputil::SimTime) {
    let report = run_with(MachineConfig::new(CELLS), move |cell| {
        let me = cell.id();
        let p = cell.ncells();
        let nb = N / p; // rows per cell
        let a = cell.alloc::<f64>(nb * N); // my rows of A
        let t = cell.alloc::<f64>(nb * N); // my rows of Aᵀ
        let flag = cell.alloc_flag();

        let mine: Vec<f64> = (0..nb * N)
            .map(|k| element(me * nb + k / N, k % N))
            .collect();
        cell.write_slice(a, &mine);
        cell.barrier();

        // A[my rows][dst cols] must land at dst as T[dst rows][my cols],
        // transposed: my element (i, j) -> dst's (j - dst*nb, me*nb + i).
        for dst in 0..p {
            for i in 0..nb {
                // Row i restricted to dst's column block, sent as a
                // column of T (stride nb... of dst's T rows).
                let src = a + ((i * N + dst * nb) * 8) as u64;
                let dst_addr = t + ((me * nb + i) * 8) as u64;
                if stride {
                    let send = StrideSpec::contiguous((nb * 8) as u64);
                    let recv = StrideSpec::new(8, nb as u32, (N * 8) as u32);
                    cell.put_stride(dst, dst_addr, src, send, recv, VAddr::NULL, flag, false);
                } else {
                    for k in 0..nb {
                        cell.put(
                            dst,
                            dst_addr + (k * N * 8) as u64,
                            src + (k * 8) as u64,
                            8,
                            VAddr::NULL,
                            flag,
                            false,
                        );
                    }
                }
            }
        }
        let expected = (p * nb * if stride { 1 } else { nb }) as u32;
        cell.wait_flag(flag, expected);
        cell.barrier();

        // Verify my block of the transpose.
        let got = cell.read_slice::<f64>(t, nb * N);
        (0..nb * N).all(|k| got[k] == element(k % N, me * nb + k / N))
    })
    .expect("simulation failed");
    (report.outputs.iter().all(|&ok| ok), report.total_time)
}

fn main() {
    let (ok_s, t_stride) = run(true);
    let (ok_e, t_elem) = run(false);
    assert!(ok_s && ok_e, "transpose verification failed");
    println!("{N}x{N} transpose over {CELLS} cells — both verified correct");
    println!("  with stride hardware : {t_stride}");
    println!("  element by element   : {t_elem}");
    println!(
        "  stride speedup       : {:.2}x",
        t_elem.as_nanos() as f64 / t_stride.as_nanos() as f64
    );
}

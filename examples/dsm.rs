//! Distributed shared memory and write-through pages (§4.2).
//!
//! Run with `cargo run --release --example dsm`.
//!
//! Cell 0 owns a lookup table in its shared-memory window; the other cells
//! read it repeatedly. Plain remote loads pay a blocking network round
//! trip every time; the write-through page cache (§4.2) pays one miss per
//! page and then serves locally — the run prints both simulated times and
//! the hit/miss counters.

use apcore::{run_with, MachineConfig};

const TABLE: u64 = 8 * 1024; // bytes in the shared lookup table
const LOOKUPS: usize = 400;

fn run(cached: bool) -> (aputil::SimTime, u64, u64) {
    let report = run_with(MachineConfig::new(4).with_trace(false), move |cell| {
        let me = cell.id();
        if me == 0 {
            // Publish the table in my shared window.
            let data: Vec<u8> = (0..TABLE).map(|i| (i * 7 % 251) as u8).collect();
            cell.remote_store(0, 0, &data);
            cell.remote_fence();
        }
        cell.barrier();
        let mut checksum = 0u64;
        if me != 0 {
            // Pseudo-random lookups with locality.
            let mut pos = (me as u64 * 997) % TABLE;
            for i in 0..LOOKUPS {
                pos = (pos + if i % 7 == 0 { 1531 } else { 8 }) % (TABLE - 8);
                let bytes = if cached {
                    cell.wt_read(0, pos, 8)
                } else {
                    cell.remote_load(0, pos, 8)
                };
                checksum = checksum.wrapping_add(u64::from(bytes[0]));
                cell.work(20); // consume the value
            }
        }
        cell.barrier();
        let (h, m) = cell.wt_stats();
        (checksum, h, m)
    })
    .expect("simulation failed");
    // Checksums must agree between modes (verified by the caller).
    let hits: u64 = report.outputs.iter().map(|&(_, h, _)| h).sum();
    let misses: u64 = report.outputs.iter().map(|&(_, _, m)| m).sum();
    (report.total_time, hits, misses)
}

fn main() {
    let (t_plain, _, _) = run(false);
    let (t_cached, hits, misses) = run(true);
    println!("{LOOKUPS} lookups per cell into a remote {TABLE}-byte table:");
    println!("  blocking remote loads : {t_plain}");
    println!("  write-through pages   : {t_cached}  ({hits} hits, {misses} page misses)");
    println!(
        "  speedup               : {:.1}x",
        t_plain.as_nanos() as f64 / t_cached.as_nanos() as f64
    );
}

//! Replays the checked-in fuzz regression corpus (`tests/corpus/*.ron`).
//!
//! Every file is a standalone reproducer for a bug the differential
//! fuzzer once caught (shrunk and annotated) or a hand-written edge case
//! worth pinning forever. Each gets its own named `#[test]` so a
//! regression names the exact scenario that broke, and a completeness
//! test fails when a corpus file is added without its named test (or a
//! test outlives its file).

use std::path::{Path, PathBuf};

fn corpus_dir() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/corpus")
}

/// Replays one corpus file through the full differential pipeline.
fn replay(name: &str) {
    let path = corpus_dir().join(name);
    let text =
        std::fs::read_to_string(&path).unwrap_or_else(|e| panic!("read {}: {e}", path.display()));
    let prog = apfuzz::from_ron(&text).unwrap_or_else(|e| panic!("{name}: {e}"));
    if let Err(violation) = apfuzz::run_program(&prog) {
        panic!("corpus regression in {name}: {violation}");
    }
}

/// Every corpus file must appear here; `corpus_is_fully_replayed` below
/// enforces the correspondence in both directions.
const CORPUS: &[&str] = &[
    "ack-overtake-unflagged-put.ron",
    "chunked-put-over-4mb.ron",
    "nonsquare-torus-long-haul.ron",
    "overlapping-stride-rejected.ron",
    "prime-cells-mixed-traffic.ron",
    "single-cell-loopback.ron",
    "stride-total-mismatch-rejected.ron",
    "zero-length-put-rejected.ron",
];

#[test]
fn corpus_ack_overtake_unflagged_put() {
    replay("ack-overtake-unflagged-put.ron");
}

#[test]
fn corpus_chunked_put_over_4mb() {
    replay("chunked-put-over-4mb.ron");
}

#[test]
fn corpus_nonsquare_torus_long_haul() {
    replay("nonsquare-torus-long-haul.ron");
}

#[test]
fn corpus_overlapping_stride_rejected() {
    replay("overlapping-stride-rejected.ron");
}

#[test]
fn corpus_prime_cells_mixed_traffic() {
    replay("prime-cells-mixed-traffic.ron");
}

#[test]
fn corpus_single_cell_loopback() {
    replay("single-cell-loopback.ron");
}

#[test]
fn corpus_stride_total_mismatch_rejected() {
    replay("stride-total-mismatch-rejected.ron");
}

#[test]
fn corpus_zero_length_put_rejected() {
    replay("zero-length-put-rejected.ron");
}

/// The directory listing and the `CORPUS` table must agree exactly, so a
/// shrunk reproducer dropped into `tests/corpus/` cannot be silently
/// forgotten (and a deleted file cannot leave a dangling test).
#[test]
fn corpus_is_fully_replayed() {
    let mut on_disk: Vec<String> = std::fs::read_dir(corpus_dir())
        .expect("read corpus dir")
        .map(|e| e.expect("dir entry").file_name().into_string().unwrap())
        .filter(|n| n.ends_with(".ron"))
        .collect();
    on_disk.sort();
    let mut listed: Vec<String> = CORPUS.iter().map(|s| s.to_string()).collect();
    listed.sort();
    assert_eq!(
        on_disk, listed,
        "tests/corpus/*.ron and the CORPUS table in tests/fuzz_corpus.rs \
         are out of sync: add a named #[test] (and a CORPUS entry) for \
         every new reproducer"
    );
}

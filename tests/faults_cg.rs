//! Tier-1 gate for the fault-injection tentpole: CG at paper scale — the
//! paper's communication worst case on the full 16-cell machine — must
//! complete with a verified numerical result despite the checked-in
//! schedule's transient link outage and corrupted packet, the recovery
//! work must be visible in the observability counters, and the identical
//! schedule must reproduce the identical `FaultReport`, byte for byte.

use apapps::{cg::Cg, Scale, Workload};

#[test]
fn cg_paper_scale_survives_the_checked_in_schedule() {
    let path = concat!(
        env!("CARGO_MANIFEST_DIR"),
        "/tests/faults/cg_survivable.ron"
    );
    let text = std::fs::read_to_string(path).expect("read checked-in fault spec");
    let spec = apfault::from_ron(&text).expect("parse checked-in fault spec");
    assert!(spec.is_survivable(), "the checked-in schedule has no crash");

    let cg = Cg::new(Scale::Paper);
    // `Ok` means every cell's zeta sequence matched the sequential
    // reference: recovery was numerically invisible.
    let a = cg
        .run_faulted(&spec)
        .expect("CG must survive the schedule with a verified result");
    let ra = a.fault.as_ref().expect("faulted run carries a report");
    assert!(ra.survived());
    assert!(ra.drops >= 1, "the outage cost at least one packet");
    assert!(ra.total_retries() >= 1, "the ack timeout retransmitted");
    assert!(ra.corrupt_detected >= 1, "the checksum caught the flip");
    assert!(ra.detours >= 1, "the known outage was routed around");
    // The same recovery work is visible through the apobs counters.
    assert_eq!(a.counters.retries, ra.total_retries());
    assert_eq!(a.counters.detours, ra.detours);
    assert!(a.counters.acks > 0);

    // Identical seed and schedule: byte-identical report, identical time.
    let b = cg.run_faulted(&spec).expect("second run");
    assert_eq!(ra.render(), b.fault.expect("report").render());
    assert_eq!(a.total_time, b.total_time);
}

//! Tier-1 replay-conformance gate.
//!
//! `tests/traces/cg_test.evtrace` is a checked-in recording of the CG
//! workload at test scale (regenerate with
//! `repro record --apps CG --scale test --trace-out tests/traces/cg_test.evtrace`
//! after an intentional emulator-timing change). The gate pins three
//! independent properties:
//!
//! 1. **Determinism, event for event** — a fresh CG run reproduces the
//!    recording exactly (strict conformance), and re-recording produces
//!    byte-identical files. This is a much finer pin than the final-time
//!    table in `tests/determinism.rs`: any reordering, re-timing, or
//!    renaming of any event on any cell unit fails here first.
//! 2. **Codec robustness** — corrupting or truncating the file yields a
//!    structured [`aptrace::EvError`], never a panic; a single mutated
//!    event fails strict replay with a two-sided context window.
//! 3. **Format economy** — the binary recording stays ≥5× smaller than
//!    the equivalent JSON serializations (`tracecat stats` pins the same
//!    ratio in CI).

use apapps::Scale;
use apbench::record::{canonical, conformance, record_app, remodel_rows, seek_report, trace_stats};
use apbench::ReplayMode;
use aptrace::{EvError, EvTrace};
use std::path::PathBuf;
use std::sync::Mutex;

/// Serializes the tests that build machines or touch the process-global
/// recorder sink; decode-only tests run freely in parallel.
static MACHINE: Mutex<()> = Mutex::new(());

fn golden_path() -> PathBuf {
    PathBuf::from(concat!(
        env!("CARGO_MANIFEST_DIR"),
        "/tests/traces/cg_test.evtrace"
    ))
}

fn golden() -> EvTrace {
    EvTrace::read_file(&golden_path()).expect("golden trace decodes")
}

fn tmp(name: &str) -> PathBuf {
    std::env::temp_dir().join(format!("ap1000plus-replay-{}-{name}", std::process::id()))
}

#[test]
fn golden_trace_decodes_to_the_pinned_shape() {
    let doc = golden();
    assert_eq!(doc.header.app, "CG");
    assert_eq!(doc.header.scale, "test");
    assert_eq!(doc.header.ncells, 4);
    // Must agree with the CG pin in tests/determinism.rs.
    assert_eq!(doc.summary.total_ns, 3_727_248);
    assert!(doc.summary.events > 1000, "CG records a real timeline");
    assert!(doc.ops.is_some(), "ops section present for remodeling");
}

#[test]
fn golden_trace_strict_replay_is_byte_identical() {
    let _g = MACHINE.lock().unwrap();
    let doc = golden();
    let conf = conformance(&doc, ReplayMode::Strict).expect("replay runs");
    assert!(conf.passed(), "{}", conf.render());

    // Re-recording writes the very same bytes.
    let path = tmp("rerecord.evtrace");
    record_app("CG", Scale::Test, None, None, &path, false).expect("re-record CG");
    let fresh = std::fs::read(&path).expect("read re-recording");
    let gold = std::fs::read(golden_path()).expect("read golden");
    assert_eq!(
        fresh, gold,
        "re-recording CG must reproduce the golden trace byte for byte \
         (if the emulator's timing changed intentionally, regenerate the golden trace)"
    );
    let _ = std::fs::remove_file(&path);
}

#[test]
fn one_mutated_event_fails_strict_with_a_context_window() {
    let _g = MACHINE.lock().unwrap();
    let mut doc = golden();
    let k = doc.streams[0].events.len() / 3;
    doc.streams[0].events[k].arg ^= 1;
    let conf = conformance(&doc, ReplayMode::Strict).expect("replay runs");
    assert!(!conf.passed());
    let window = conf.mismatch.as_deref().expect("context window rendered");
    assert!(window.contains("first mismatch"), "{window}");
    assert!(window.contains("recorded:") && window.contains("replayed:"));
    assert!(window.contains('>'), "mismatch marker present: {window}");
    // The mutation left timing untouched, so the lenient gate stays green.
    let lenient = conformance(&doc, ReplayMode::Lenient).expect("lenient replay");
    assert!(lenient.passed(), "{}", lenient.render());
}

#[test]
fn corruption_and_truncation_are_structured_errors_not_panics() {
    let bytes = std::fs::read(golden_path()).expect("read golden");
    // Every prefix decodes to an error, never a panic or an Ok.
    for len in [0, 1, 7, 8, 9, bytes.len() / 2, bytes.len() - 1] {
        let err = EvTrace::decode(&bytes[..len]).expect_err("prefix cannot decode");
        assert!(
            matches!(
                err,
                EvError::Truncated { .. } | EvError::Corrupt { .. } | EvError::BadMagic
            ),
            "unexpected error for prefix {len}: {err}"
        );
    }
    // A flipped byte mid-file is caught structurally (whatever it hits).
    let mut bad = bytes.clone();
    bad[1000] ^= 0xFF;
    assert!(EvTrace::decode(&bad).is_err(), "bit flip must not decode");
}

#[test]
fn streamed_and_buffered_recordings_agree_event_for_event() {
    let _g = MACHINE.lock().unwrap();
    let bpath = tmp("ep-buffered.evtrace");
    let spath = tmp("ep-streamed.evtrace");
    record_app("EP", Scale::Test, None, None, &bpath, false).expect("buffered record");
    record_app("EP", Scale::Test, None, None, &spath, true).expect("streamed record");
    let buffered = EvTrace::read_file(&bpath).expect("decode buffered");
    let streamed = EvTrace::read_file(&spath).expect("decode streamed");
    assert_eq!(buffered.summary.total_ns, streamed.summary.total_ns);
    assert_eq!(buffered.summary.events, streamed.summary.events);
    assert_eq!(
        canonical(buffered.all_events()),
        canonical(streamed.all_events()),
        "section order may differ; canonical event sets may not"
    );
    let _ = std::fs::remove_file(&bpath);
    let _ = std::fs::remove_file(&spath);
}

#[test]
fn seek_reconstructs_state_inside_the_recorded_run() {
    let doc = golden();
    let dump = seek_report(&doc, doc.summary.total_ns / 2, None);
    assert!(dump.contains("state at t="), "{dump}");
    assert!(dump.contains("in-flight transfers"), "{dump}");
    assert!(dump.contains("queue depths"), "{dump}");
    assert!(dump.contains("blocked cells"), "{dump}");
    // Past-the-end seeks warn instead of failing.
    let past = seek_report(&doc, doc.summary.total_ns + 1, None);
    assert!(past.contains("past the end"), "{past}");
}

#[test]
fn remodel_emits_a_versioned_bench_report_without_the_emulator() {
    let doc = golden();
    let rows = remodel_rows(&doc, &[0.5, 1.0]).expect("remodel");
    assert_eq!(rows.len(), 2);
    let report = apbench::bench_report(&rows, Scale::Test, Some("replay-gate"));
    let parsed = aputil::Json::parse(&report.to_string()).expect("report parses");
    assert_eq!(
        parsed.get("schema").and_then(aputil::Json::as_str),
        Some(apbench::BENCH_SCHEMA)
    );
    assert_eq!(
        parsed.get("version").and_then(aputil::Json::as_u64),
        Some(1)
    );
    let apps = parsed.get("apps").and_then(aputil::Json::as_arr).unwrap();
    assert_eq!(apps.len(), 2);
}

#[test]
fn binary_recording_is_at_least_5x_smaller_than_json() {
    let doc = golden();
    let bytes = std::fs::metadata(golden_path()).unwrap().len();
    let st = trace_stats(&doc, bytes);
    assert!(
        st.ratio() >= 5.0,
        "acceptance: binary must be >=5x smaller than the JSON equivalent, got {:.1}x",
        st.ratio()
    );
}

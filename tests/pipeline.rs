//! Cross-crate integration tests: applications → emulator → trace →
//! MLSim, the full reproduction pipeline at test scale.

use apapps::{standard_suite, Scale, Workload};
use aptrace::AppStats;
use mlsim::{replay, speedup, ModelParams};

/// Every workload runs, verifies, and replays under all three models with
/// the paper's qualitative ordering: hardware handling beats software
/// handling beats the slow processor (except EP, where all that matters
/// is the CPU).
#[test]
fn suite_runs_verifies_and_orders_models() {
    for w in standard_suite(Scale::Test) {
        let report = w
            .run()
            .unwrap_or_else(|e| panic!("{} failed: {e}", w.name()));
        let plus = replay(&report.trace, &ModelParams::ap1000_plus()).unwrap();
        let star = replay(&report.trace, &ModelParams::ap1000_star()).unwrap();
        let old = replay(&report.trace, &ModelParams::ap1000()).unwrap();
        assert!(
            plus.total <= star.total,
            "{}: AP1000+ ({}) must not lose to AP1000* ({})",
            w.name(),
            plus.total,
            star.total
        );
        assert!(
            star.total <= old.total,
            "{}: AP1000* ({}) must not lose to AP1000 ({})",
            w.name(),
            star.total,
            old.total
        );
        let sp = speedup(&old, &plus);
        assert!(
            (1.0..=100.0).contains(&sp),
            "{}: implausible AP1000+ speedup {sp}",
            w.name()
        );
    }
}

/// The emulator's own hardware-parameter timing and MLSim's AP1000+
/// replay of the same trace must agree on the order of magnitude — they
/// model the same machine at different levels of detail.
#[test]
fn emulator_and_mlsim_agree_roughly() {
    for w in standard_suite(Scale::Test) {
        let report = w.run().unwrap();
        if report.total_time == aputil::SimTime::ZERO {
            continue;
        }
        let plus = replay(&report.trace, &ModelParams::ap1000_plus()).unwrap();
        let ratio = report.total_time.as_nanos() as f64 / plus.total.as_nanos() as f64;
        assert!(
            (0.3..=3.0).contains(&ratio),
            "{}: emulator {} vs MLSim {} (ratio {ratio:.2})",
            w.name(),
            report.total_time,
            plus.total
        );
    }
}

/// Trace recording and replay are deterministic end to end.
#[test]
fn pipeline_is_deterministic() {
    let w = apapps::cg::Cg::new(Scale::Test);
    let a = w.run().unwrap();
    let b = w.run().unwrap();
    assert_eq!(a.trace, b.trace, "emulator traces differ between runs");
    assert_eq!(a.total_time, b.total_time);
    let ra = replay(&a.trace, &ModelParams::ap1000()).unwrap();
    let rb = replay(&b.trace, &ModelParams::ap1000()).unwrap();
    assert_eq!(ra, rb, "replays differ between runs");
}

/// The §5.4 stride ablation end to end: TOMCATV without stride hardware
/// is slower on the AP1000+ and *much* slower under software handling.
#[test]
fn tomcatv_stride_ablation() {
    let st = apapps::tomcatv::Tomcatv::new(Scale::Test, true)
        .run()
        .unwrap();
    let no = apapps::tomcatv::Tomcatv::new(Scale::Test, false)
        .run()
        .unwrap();
    let plus_st = replay(&st.trace, &ModelParams::ap1000_plus()).unwrap();
    let plus_no = replay(&no.trace, &ModelParams::ap1000_plus()).unwrap();
    let star_st = replay(&st.trace, &ModelParams::ap1000_star()).unwrap();
    let star_no = replay(&no.trace, &ModelParams::ap1000_star()).unwrap();
    let plus_penalty = plus_no.total.as_nanos() as f64 / plus_st.total.as_nanos() as f64;
    let star_penalty = star_no.total.as_nanos() as f64 / star_st.total.as_nanos() as f64;
    assert!(
        plus_penalty > 1.0,
        "no-stride must cost on AP1000+ ({plus_penalty:.2})"
    );
    assert!(
        star_penalty > plus_penalty,
        "software handling must amplify the no-stride penalty \
         (star {star_penalty:.2} vs plus {plus_penalty:.2})"
    );
}

/// Table-3 invariants that hold at any scale.
#[test]
fn trace_statistics_invariants() {
    for w in standard_suite(Scale::Test) {
        let report = w.run().unwrap();
        let stats = AppStats::from_trace(&report.trace);
        let row = stats.to_row();
        assert_eq!(row.pe, w.pe() as usize, "{}", w.name());
        // Barrier epochs seen by the S-net equal barrier ops per PE.
        assert_eq!(
            report.barriers as f64,
            row.sync,
            "{}: S-net epochs vs trace barriers",
            w.name()
        );
        // VPP applications acknowledge their PUTs; C applications never do.
        if w.is_vpp() {
            assert_eq!(
                stats.ack_gets,
                stats.put + stats.puts,
                "{}: every VPP PUT is acknowledged",
                w.name()
            );
        } else {
            assert_eq!(stats.ack_gets, 0, "{}: C apps use flags", w.name());
        }
        // RTS work appears only in VPP programs.
        assert_eq!(
            stats.rts_units > 0,
            w.is_vpp() && stats.put + stats.puts + stats.get + stats.gets > 0,
            "{}: RTS charging",
            w.name()
        );
    }
}

/// Replaying the same trace with a faster processor never makes any
/// model slower (a regression guard for CPU-contention anomalies like the
/// interrupt-reply bug found during development).
#[test]
fn faster_cpu_never_hurts() {
    for w in standard_suite(Scale::Test) {
        let report = w.run().unwrap();
        let old = replay(&report.trace, &ModelParams::ap1000()).unwrap();
        let star = replay(&report.trace, &ModelParams::ap1000_star()).unwrap();
        assert!(
            star.total.as_nanos() <= old.total.as_nanos() + 1000,
            "{}: AP1000* {} slower than AP1000 {}",
            w.name(),
            star.total,
            old.total
        );
    }
}

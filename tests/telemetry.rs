//! Acceptance suite for the `apmon` telemetry stack.
//!
//! Three properties gate the observability layer:
//!
//! * the `ap1000plus.metrics` artifact is a **byte-reproducibility
//!   surface**: identical across host thread counts and across re-runs,
//!   with every `host_*` field stripped;
//! * **huge machines** (beyond the paper's 1024 cells) refuse unbounded
//!   timeline recording but accept the bounded flight recorder, and the
//!   sampled-metrics path works at that size;
//! * sampling is cheap enough to leave **always on**: the instrumented
//!   run loop stays within a few percent of the plain one (asserted in
//!   release builds only — debug timing is noise).
//!
//! The metrics/flight-recorder defaults are process-wide statics, so the
//! tests serialize on one lock and restore the defaults before releasing.

use apapps::Scale;
use apbench::{run_sweep, SweepConfig, SweepOutcome};
use apcore::{run_with, MachineConfig, VAddr};
use aputil::SimTime;
use std::num::NonZeroUsize;
use std::sync::Mutex;

static DEFAULTS: Mutex<()> = Mutex::new(());

fn lock() -> std::sync::MutexGuard<'static, ()> {
    DEFAULTS
        .lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner)
}

fn sweep_cfg(threads: usize) -> SweepConfig {
    SweepConfig {
        scale: Scale::Test,
        apps: vec!["EP".into(), "CG".into()],
        sizes: vec![None],
        factors: vec![1.0],
        threads,
    }
}

fn metrics_doc(out: &SweepOutcome) -> String {
    let runs: Vec<(String, &apmon::RunMetrics)> = out
        .rows
        .iter()
        .filter_map(|r| r.metrics.as_deref().map(|m| (r.name.clone(), m)))
        .collect();
    assert_eq!(runs.len(), out.rows.len(), "every row must carry metrics");
    apmon::metrics_report(&runs).to_string()
}

#[test]
fn metrics_artifact_is_thread_count_invariant_and_reruns_identically() {
    let _g = lock();
    apcore::set_metrics_default(Some(SimTime::from_micros(10)));
    let serial = run_sweep(&sweep_cfg(1));
    let parallel = run_sweep(&sweep_cfg(8));
    let again = run_sweep(&sweep_cfg(1));
    apcore::set_metrics_default(None);
    assert!(serial.failures.is_empty(), "{:?}", serial.failures);
    assert!(parallel.failures.is_empty(), "{:?}", parallel.failures);
    let a = metrics_doc(&serial);
    assert_eq!(
        a,
        metrics_doc(&parallel),
        "metrics artifact must not depend on host thread count"
    );
    assert_eq!(
        a,
        metrics_doc(&again),
        "metrics artifact must be byte-identical across re-runs"
    );
    let doc = aputil::Json::parse(&a).expect("artifact parses");
    apmon::check_metrics_schema(&doc).expect("versioned schema");
    assert!(
        !a.contains("\"host_"),
        "host profiling leaked into the versioned artifact"
    );
}

#[test]
fn huge_machines_refuse_unbounded_timeline_but_accept_the_flight_recorder() {
    let _g = lock();
    // Unbounded timeline on a beyond-hardware machine: refused up front,
    // pointing at the flight recorder (no machine is ever built, so this
    // is cheap even at 4096 cells).
    let err = run_with(MachineConfig::new(4096).with_timeline(true), |cell| {
        cell.id()
    })
    .expect_err("unbounded timeline on 4096 cells must be refused");
    let msg = err.to_string();
    assert!(msg.contains("flight recorder"), "{msg}");

    // The bounded ring at the same class of size is accepted, keeps the
    // recorded tail small, and the sampled metrics carry torus heatmaps.
    let cells = 1156u32; // 34x34 torus, just past the hardware limit
    let r = run_with(
        MachineConfig::new(cells)
            .with_flight_recorder(NonZeroUsize::new(64))
            .with_metrics_interval(Some(SimTime::from_micros(1))),
        |cell| {
            let peer = (cell.id() + 1) % cell.ncells();
            let a = cell.alloc::<u64>(8);
            cell.put(peer, a, a, 64, VAddr::NULL, VAddr::NULL, false);
            cell.barrier();
            cell.id()
        },
    )
    .expect("flight-recorder run on 1156 cells");
    assert!(
        !r.timeline.events.is_empty(),
        "ring recorder must keep a tail"
    );
    let m = r.metrics.expect("sampling was on");
    let busy = m.cell_busy.expect("cell-busy heatmap");
    assert_eq!((busy.width, busy.height), (34, 34));
    assert_eq!(busy.values.len(), cells as usize);
    // The run moved real traffic, so some link saw busy time.
    assert!(!m.links.is_empty(), "per-link busy table is empty");
}

#[test]
fn sampled_metrics_overhead_is_bounded() {
    let _g = lock();
    // Paper-scale CG (the communication-heaviest Table-2 row) with and
    // without sampling, min-of-3 each. Debug builds only report the
    // ratio: the 5% budget is a property of the optimized hot loop.
    let scale = if cfg!(debug_assertions) {
        Scale::Test
    } else {
        Scale::Paper
    };
    let time = |interval: Option<SimTime>| {
        apcore::set_metrics_default(interval);
        let best = (0..3)
            .map(|_| {
                let w = apbench::sweep::build_workload("CG", scale, None).unwrap();
                let t0 = std::time::Instant::now();
                w.run().expect("CG run");
                t0.elapsed()
            })
            .min()
            .unwrap();
        apcore::set_metrics_default(None);
        best
    };
    let off = time(None);
    let on = time(Some(SimTime::from_micros(100)));
    let ratio = on.as_secs_f64() / off.as_secs_f64().max(1e-9);
    eprintln!("sampled-metrics overhead: off={off:?} on={on:?} ratio={ratio:.3}");
    if !cfg!(debug_assertions) {
        // 5% relative budget plus a small absolute floor so sub-100ms
        // runs don't fail on scheduler jitter.
        assert!(
            on.as_secs_f64() <= off.as_secs_f64() * 1.05 + 0.005,
            "sampled metrics cost {:.1}%, over the 5% budget",
            (ratio - 1.0) * 100.0
        );
    }
}

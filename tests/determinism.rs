//! Determinism suite for the hot-path overhaul.
//!
//! The zero-copy payload path, the indexed waiter slots, the request
//! batching and the parallel sweep driver are all host-side mechanics:
//! none of them may move a single simulated nanosecond. Two pins enforce
//! that:
//!
//! * the Table-2 suite's final emulator times at test scale are frozen to
//!   the values the pre-overhaul kernel produced (the fuzz corpus in
//!   `tests/fuzz_corpus.rs` separately replays its reproducers through
//!   the full differential referees);
//! * an `apsweep` grid run on 1 thread and on N threads serializes to
//!   byte-identical bench-report JSON.
//!
//! If an *intentional* timing-model change moves the suite times, update
//! the constants here in the same commit and say why.

use apapps::{standard_suite, Scale};
use apbench::{bench_report, run_sweep, SweepConfig};

/// Final simulated time of each Table-2 workload at test scale, pinned
/// to the pre-zero-copy kernel's output.
const FINAL_TIMES_NS: &[(&str, u64)] = &[
    ("EP", 512_000),
    ("CG", 3_727_248),
    ("FT", 660_112),
    ("SP", 10_464_120),
    ("TC st", 2_145_696),
    ("TC no st", 4_141_128),
    ("MatMul", 492_016),
    ("SCG", 4_617_904),
];

#[test]
fn suite_final_times_are_unchanged() {
    for w in standard_suite(Scale::Test) {
        let report = w
            .run()
            .unwrap_or_else(|e| panic!("{} failed on the emulator: {e}", w.name()));
        let want = FINAL_TIMES_NS
            .iter()
            .find(|(n, _)| *n == w.name())
            .unwrap_or_else(|| panic!("no pinned time for {}", w.name()))
            .1;
        assert_eq!(
            report.total_time.as_nanos(),
            want,
            "{}: simulated final time moved — the hot path must not \
             change simulation results",
            w.name()
        );
    }
}

#[test]
fn sweep_is_thread_count_invariant() {
    let cfg = |threads| SweepConfig {
        scale: Scale::Test,
        apps: vec!["EP".into(), "CG".into()],
        sizes: vec![None, Some(4)],
        factors: vec![0.25, 1.0],
        threads,
    };
    let serial = run_sweep(&cfg(1));
    let parallel = run_sweep(&cfg(8));
    assert!(serial.failures.is_empty(), "{:?}", serial.failures);
    assert!(parallel.failures.is_empty(), "{:?}", parallel.failures);
    let a = bench_report(&serial.rows, Scale::Test, Some("pin")).to_string();
    let b = bench_report(&parallel.rows, Scale::Test, Some("pin")).to_string();
    assert_eq!(a, b, "sweep output must not depend on thread count");
}

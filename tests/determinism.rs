//! Determinism suite for the hot-path overhaul.
//!
//! The zero-copy payload path, the indexed waiter slots, the request
//! batching and the parallel sweep driver are all host-side mechanics:
//! none of them may move a single simulated nanosecond. Two pins enforce
//! that:
//!
//! * the Table-2 suite's final emulator times at test scale are frozen to
//!   the values the pre-overhaul kernel produced (the fuzz corpus in
//!   `tests/fuzz_corpus.rs` separately replays its reproducers through
//!   the full differential referees);
//! * an `apsweep` grid run on 1 thread and on N threads serializes to
//!   byte-identical bench-report JSON;
//! * a single 1024-cell CG run recorded under the windowed PDES engine
//!   (`--sim-threads` 2/4/8, DESIGN.md §10) produces the byte-identical
//!   evtrace and final simulated time the serial engine produces, with
//!   and without fault injection.
//!
//! If an *intentional* timing-model change moves the suite times, update
//! the constants here in the same commit and say why.

use std::sync::Mutex;

use apapps::{standard_suite, Scale};
use apbench::{bench_report, record_app, run_sweep, SweepConfig};

/// Final simulated time of each Table-2 workload at test scale, pinned
/// to the pre-zero-copy kernel's output.
const FINAL_TIMES_NS: &[(&str, u64)] = &[
    ("EP", 512_000),
    ("CG", 3_727_248),
    ("FT", 660_112),
    ("SP", 10_464_120),
    ("TC st", 2_145_696),
    ("TC no st", 4_141_128),
    ("MatMul", 492_016),
    ("SCG", 4_617_904),
];

#[test]
fn suite_final_times_are_unchanged() {
    for w in standard_suite(Scale::Test) {
        let report = w
            .run()
            .unwrap_or_else(|e| panic!("{} failed on the emulator: {e}", w.name()));
        let want = FINAL_TIMES_NS
            .iter()
            .find(|(n, _)| *n == w.name())
            .unwrap_or_else(|| panic!("no pinned time for {}", w.name()))
            .1;
        assert_eq!(
            report.total_time.as_nanos(),
            want,
            "{}: simulated final time moved — the hot path must not \
             change simulation results",
            w.name()
        );
    }
}

#[test]
fn sweep_is_thread_count_invariant() {
    let cfg = |threads| SweepConfig {
        scale: Scale::Test,
        apps: vec!["EP".into(), "CG".into()],
        sizes: vec![None, Some(4)],
        factors: vec![0.25, 1.0],
        threads,
    };
    let serial = run_sweep(&cfg(1));
    let parallel = run_sweep(&cfg(8));
    assert!(serial.failures.is_empty(), "{:?}", serial.failures);
    assert!(parallel.failures.is_empty(), "{:?}", parallel.failures);
    let a = bench_report(&serial.rows, Scale::Test, Some("pin")).to_string();
    let b = bench_report(&parallel.rows, Scale::Test, Some("pin")).to_string();
    assert_eq!(a, b, "sweep output must not depend on thread count");
}

/// The `--sim-threads` default is process-global, so the PDES tests
/// serialize behind this lock and restore the serial default (via
/// [`SerialDefault`]) before releasing it.
static SIM_THREADS_LOCK: Mutex<()> = Mutex::new(());

/// Drop guard: puts the process back on the classic serial engine even if
/// a recording panics mid-matrix.
struct SerialDefault;

impl Drop for SerialDefault {
    fn drop(&mut self) {
        apcore::set_sim_threads_default(1);
    }
}

fn scratch(name: &str) -> std::path::PathBuf {
    std::env::temp_dir().join(format!("ap1000plus-pdes-{}-{name}", std::process::id()))
}

/// Records one CG run per `sim-threads` count and asserts every recording
/// is byte-for-byte the serial recording with the same final simulated
/// time. On divergence, reports the first differing offset instead of
/// dumping megabytes of trace.
fn assert_thread_count_invariant_recordings<F>(counts: &[u32], mut record: F)
where
    F: FnMut(u32, &std::path::Path) -> apbench::RecordedTrace,
{
    let _serial = SIM_THREADS_LOCK.lock().expect("sim-threads lock");
    let _restore = SerialDefault;
    let mut baseline: Option<(Vec<u8>, u64)> = None;
    for &threads in counts {
        apcore::set_sim_threads_default(threads);
        let path = scratch(&format!("t{threads}.evtrace"));
        let rec = record(threads, &path);
        let bytes = std::fs::read(&path).expect("read recorded trace");
        let _ = std::fs::remove_file(&path);
        match &baseline {
            None => baseline = Some((bytes, rec.total.as_nanos())),
            Some((want, total)) => {
                assert_eq!(
                    rec.total.as_nanos(),
                    *total,
                    "final simulated time moved at {threads} sim threads"
                );
                if bytes != *want {
                    let at = bytes
                        .iter()
                        .zip(want.iter())
                        .position(|(a, b)| a != b)
                        .unwrap_or_else(|| bytes.len().min(want.len()));
                    panic!(
                        "evtrace diverged at {threads} sim threads: first \
                         difference at byte {at} (serial {} bytes, parallel \
                         {} bytes) — the windowed engine must replay the \
                         serial event stream exactly",
                        want.len(),
                        bytes.len()
                    );
                }
            }
        }
    }
}

#[test]
fn pdes_trace_is_byte_identical_across_sim_thread_counts() {
    // 1024 cells: large enough that every window spans many tiles and the
    // wide-batch + eager-delivery fast paths are all exercised.
    assert_thread_count_invariant_recordings(&[1, 2, 4, 8], |threads, path| {
        record_app("CG", Scale::Test, Some(1024), None, path, false)
            .unwrap_or_else(|e| panic!("record CG at {threads} sim threads: {e}"))
    });
}

#[test]
fn pdes_with_fault_injection_matches_the_serial_engine() {
    // Fault injection forces the serial engine regardless of the
    // configured thread count (retry timers and detours are scheduled
    // against the global clock, not a window). The recordings must still
    // be byte-identical — the fallback is the mechanism under test.
    let path = concat!(
        env!("CARGO_MANIFEST_DIR"),
        "/tests/faults/cg_survivable.ron"
    );
    let text = std::fs::read_to_string(path).expect("read checked-in fault spec");
    let spec = apfault::from_ron(&text).expect("parse checked-in fault spec");
    assert_thread_count_invariant_recordings(&[1, 8], |threads, path| {
        record_app("CG", Scale::Paper, None, Some(&spec), path, false)
            .unwrap_or_else(|e| panic!("record faulted CG at {threads} sim threads: {e}"))
    });
}
